//! Order-preserving key normalization and the columnar kernels built on
//! it: LSB radix sort and row hashing.
//!
//! Every hot primitive of the join framework — C-order sorts inside
//! chunks (`sort`/`redim`, paper Table 1), key-order sorts of
//! dimension-less join units, chunk-id regrouping, and hash routing of
//! cells to buckets — bottoms out in either *ordering* rows by a small
//! tuple of fixed-width columns or *hashing* that tuple. This module
//! packs such a tuple into one order-preserving normalized key so those
//! primitives become byte-wise kernels instead of per-row virtual
//! comparisons:
//!
//! * `i64` maps to `u64` by flipping the sign bit ([`encode_i64`]), so
//!   unsigned byte order equals signed integer order.
//! * `f64` maps to `u64` with the IEEE total-order trick
//!   ([`encode_f64`]): negative values have all bits inverted, positive
//!   values only the sign bit. Unsigned order then equals
//!   `f64::total_cmp` — exactly the comparator [`Column::cmp_at`] uses,
//!   NaNs and signed zeros included.
//! * `bool` maps to one byte, `false < true`.
//!
//! Multi-column keys concatenate the per-column encodings big-endian
//! (most significant column first), so lexicographic column order equals
//! unsigned key order. Before packing, the sort kernels *range-compress*
//! each column: one sequential scan finds the column's encoded min/max,
//! the minimum is subtracted (order-preserving on `u64`), and only the
//! surviving `ceil(log2(max - min + 1))` bits are kept — constant
//! columns vanish outright. Real coordinate and key domains are narrow,
//! so most multi-column keys collapse into a single `u64` and the radix
//! sort touches only the digits that carry entropy. Compressed keys of
//! ≤ 64 bits pack into one `u64`; wider keys (up to [`MAX_KEY_BYTES`]
//! after compression) use a row-major byte matrix. String columns — and
//! keys beyond the compressed-width budget — do not normalize: callers
//! fall back to the comparator path, which stays bit-compatible (the
//! radix sort is stable, as is the fallback). The compressed encodings
//! are per-batch (the bias depends on the data), so they are only used
//! to order rows *within* one batch; cross-batch keys
//! ([`encode_rows_u64`]) stay uncompressed.
//!
//! The radix sorts produce a permutation of row indices; the batch is
//! then reordered by one columnar gather pass per column through
//! reusable [`GatherScratch`] buffers (see
//! [`CellBatch::apply_permutation`]). All large intermediates live in a
//! thread-local [`SortScratch`], so steady-state sorting performs no
//! heap allocation.

use std::cell::RefCell;

use crate::batch::{CellBatch, Column};
use crate::value::DataType;

/// Maximum *range-compressed* key width in bytes (and maximum key column
/// count); wider keys fall back to the comparator sort. 32 bytes covers
/// four full-range `i64` dimensions, or many more narrow-domain ones.
pub const MAX_KEY_BYTES: usize = 32;

/// Below this row count the comparator sort beats every normalized-key
/// kernel: encoding + histogramming cost ~4 passes over the data before
/// a single row moves, while `sort_unstable_by`'s branchy inner loop is
/// already done. Calibrated by `JOIN_KERNELS_CALIBRATE=1 cargo bench
/// --bench join_kernels` (interleaved radix-vs-comparator sweep: at 16
/// rows the comparator is 2.4x faster, at 32 they tie within 1%, at 64
/// radix is 1.9x faster — see DESIGN.md §12); override via
/// [`KernelConfig::radix_min_rows`].
pub const RADIX_MIN_ROWS: usize = 32;

/// Maximum compressed key width, in bits, for the counting-sort kernel.
/// 16 bits caps the count table at 64 K entries (256 KiB) — L2-resident.
pub const COUNTING_MAX_BITS: u32 = 16;

/// Minimum rows before a sort is split across worker threads. Below
/// this, thread spawn + barrier overhead (~tens of µs) dwarfs the sort.
pub const PARALLEL_MIN_ROWS: usize = 1 << 20;

/// Thresholds steering kernel dispatch, plus the intra-sort thread
/// budget. [`Default`] holds the sweep-calibrated values; construct with
/// struct-update syntax to override a single knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Sorts of fewer rows use the comparator path outright.
    pub radix_min_rows: usize,
    /// Compressed keys of at most this many bits (when the 2^bits count
    /// table also does not exceed the row count) use one counting-sort
    /// pass instead of per-digit radix passes.
    pub counting_max_bits: u32,
    /// Sorts of at least this many rows may split across threads.
    pub parallel_min_rows: usize,
    /// Worker threads available to one sort/join call (1 = sequential).
    pub threads: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            radix_min_rows: RADIX_MIN_ROWS,
            counting_max_bits: COUNTING_MAX_BITS,
            parallel_min_rows: PARALLEL_MIN_ROWS,
            threads: 1,
        }
    }
}

impl KernelConfig {
    /// A config that always picks the plain radix kernels — the exact
    /// pre-dispatch behavior, used by the forcing entry points
    /// ([`radix_sort_c_order`]) and as a per-kernel bench baseline.
    pub fn radix_only() -> Self {
        KernelConfig {
            radix_min_rows: 0,
            counting_max_bits: 0,
            parallel_min_rows: usize::MAX,
            threads: 1,
        }
    }
}

/// Which kernel a dispatched sort actually ran — returned to callers so
/// the executor can report dispatch decisions in telemetry and tests can
/// pin dispatch-vs-forced bit identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKernel {
    /// Rows were already in order (pre-sorted input or constant key).
    Identity,
    /// Single counting-sort pass over the compressed key domain.
    Counting,
    /// LSB radix over single-`u64` packed keys.
    RadixU64,
    /// LSB radix over the row-major byte matrix (keys wider than 64 bits).
    RadixBytes,
    /// Multi-threaded MSB partition + per-bucket LSB radix.
    ParallelRadix,
    /// Comparator sort (string/wide keys, or below `radix_min_rows`).
    Comparator,
}

impl SortKernel {
    /// Every kernel, in a fixed order — aggregation loops iterate this so
    /// telemetry fields come out in the same order on every run.
    pub const ALL: [SortKernel; 6] = [
        SortKernel::Identity,
        SortKernel::Counting,
        SortKernel::RadixU64,
        SortKernel::RadixBytes,
        SortKernel::ParallelRadix,
        SortKernel::Comparator,
    ];

    /// Stable name used in telemetry fields and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            SortKernel::Identity => "identity",
            SortKernel::Counting => "counting",
            SortKernel::RadixU64 => "radix_u64",
            SortKernel::RadixBytes => "radix_bytes",
            SortKernel::ParallelRadix => "parallel_radix",
            SortKernel::Comparator => "comparator",
        }
    }
}

/// Map an `i64` to a `u64` whose unsigned order equals the signed order.
#[inline]
pub fn encode_i64(x: i64) -> u64 {
    (x as u64) ^ (1u64 << 63)
}

/// Map an `f64` to a `u64` whose unsigned order equals
/// [`f64::total_cmp`] order (IEEE 754 totalOrder).
#[inline]
pub fn encode_f64(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1u64 << 63)
    }
}

/// Map a `bool` to a byte preserving `false < true`.
#[inline]
pub fn encode_bool(x: bool) -> u64 {
    x as u64
}

/// Normalized width in bytes of one key column of the given type, or
/// `None` if the type does not normalize (strings are unbounded).
pub fn key_width(dtype: DataType) -> Option<usize> {
    match dtype {
        DataType::Int64 | DataType::Float64 => Some(8),
        DataType::Bool => Some(1),
        DataType::Str => None,
    }
}

/// A borrowed view of one encodable key column.
enum KeyCol<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
    Bool(&'a [bool]),
}

impl KeyCol<'_> {
    fn width(&self) -> usize {
        match self {
            KeyCol::Int(_) | KeyCol::Float(_) => 8,
            KeyCol::Bool(_) => 1,
        }
    }
}

/// Reusable buffers for the radix-sort kernels. One instance lives in a
/// thread-local ([`with_scratch`]); steady-state sorts allocate nothing.
#[derive(Debug, Default)]
pub struct SortScratch {
    /// Packed keys for the single-`u64` path.
    keys64: Vec<u64>,
    /// Row-major key bytes for the wide path.
    key_bytes: Vec<u8>,
    /// The permutation under construction.
    perm: Vec<u32>,
    /// Scatter target, swapped with `perm` each digit pass.
    tmp: Vec<u32>,
    /// Per-digit histograms (`digits × 256`).
    counts: Vec<u32>,
    /// Column-gather buffers for applying the permutation.
    pub gather: crate::batch::GatherScratch,
}

thread_local! {
    static SCRATCH: RefCell<SortScratch> = RefCell::new(SortScratch::default());
}

/// Run `f` with the thread-local [`SortScratch`]. Falls back to a fresh
/// scratch if the thread-local is already borrowed (re-entrant use).
pub fn with_scratch<R>(f: impl FnOnce(&mut SortScratch) -> R) -> R {
    SCRATCH.with(|c| match c.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut SortScratch::default()),
    })
}

/// Collect the coordinate columns of `batch` as key columns.
fn coord_key_cols(batch: &CellBatch) -> Option<Vec<KeyCol<'_>>> {
    if batch.ndims() == 0 || batch.ndims() > MAX_KEY_BYTES {
        return None;
    }
    Some(batch.coords.iter().map(|c| KeyCol::Int(c)).collect())
}

/// Collect the given attribute columns of `batch` as key columns, if
/// every column normalizes. Also returns the total *uncompressed* width
/// (what [`encode_rows_u64`] budgets against).
fn attr_key_cols<'a>(batch: &'a CellBatch, cols: &[usize]) -> Option<(Vec<KeyCol<'a>>, usize)> {
    if cols.is_empty() || cols.len() > MAX_KEY_BYTES {
        return None;
    }
    let mut out = Vec::with_capacity(cols.len());
    let mut width = 0usize;
    for &c in cols {
        match &batch.attrs[c] {
            Column::Int(v) => out.push(KeyCol::Int(v)),
            Column::Float(v) => out.push(KeyCol::Float(v)),
            Column::Bool(v) => out.push(KeyCol::Bool(v)),
            Column::Str(_) => return None,
        }
        width += out.last().unwrap().width();
    }
    Some((out, width))
}

/// One column's compression parameters: the minimum encoded value (the
/// bias to subtract) and the bit width of `max - min`. A constant (or
/// empty) column compresses to zero bits and drops out of the key.
fn col_range(col: &KeyCol<'_>) -> (u64, u32) {
    macro_rules! scan {
        ($v:expr, $enc:expr) => {{
            let mut min = u64::MAX;
            let mut max = 0u64;
            for &x in $v.iter() {
                let e = $enc(x);
                min = min.min(e);
                max = max.max(e);
            }
            if min > max {
                (0, 0)
            } else {
                (min, 64 - (max - min).leading_zeros())
            }
        }};
    }
    match col {
        KeyCol::Int(v) => scan!(v, encode_i64),
        KeyCol::Float(v) => scan!(v, encode_f64),
        KeyCol::Bool(v) => scan!(v, encode_bool),
    }
}

/// Pack every row's range-compressed key columns into a single `u64`
/// (total compressed width ≤ 64 bits).
fn encode_u64_biased(cols: &[KeyCol<'_>], ranges: &[(u64, u32)], n: usize, keys: &mut Vec<u64>) {
    keys.clear();
    keys.resize(n, 0);
    for (col, &(min, bits)) in cols.iter().zip(ranges) {
        if bits == 0 {
            continue;
        }
        // Earlier columns are more significant: shift what is already
        // packed left by the new column's compressed width, then OR the
        // biased value in. A 64-bit column is necessarily the only
        // significant one, so it overwrites instead of shifting.
        macro_rules! fill {
            ($v:expr, $enc:expr) => {
                if bits >= 64 {
                    for (k, &x) in keys.iter_mut().zip($v.iter()) {
                        *k = $enc(x) - min;
                    }
                } else {
                    for (k, &x) in keys.iter_mut().zip($v.iter()) {
                        *k = (*k << bits) | ($enc(x) - min);
                    }
                }
            };
        }
        match col {
            KeyCol::Int(v) => fill!(v, encode_i64),
            KeyCol::Float(v) => fill!(v, encode_f64),
            KeyCol::Bool(v) => fill!(v, encode_bool),
        }
    }
}

/// Pack every row's range-compressed key columns into `width` big-endian
/// bytes, row-major; each column occupies its byte-rounded compressed
/// width.
fn encode_bytes_biased(
    cols: &[KeyCol<'_>],
    ranges: &[(u64, u32)],
    width: usize,
    n: usize,
    bytes: &mut Vec<u8>,
) {
    bytes.clear();
    bytes.resize(n * width, 0);
    let mut off = 0usize;
    for (col, &(min, bits)) in cols.iter().zip(ranges) {
        if bits == 0 {
            continue;
        }
        let nb = bits.div_ceil(8) as usize;
        macro_rules! fill {
            ($v:expr, $enc:expr) => {
                for (row, &x) in $v.iter().enumerate() {
                    let be = ($enc(x) - min).to_be_bytes();
                    let at = row * width + off;
                    bytes[at..at + nb].copy_from_slice(&be[8 - nb..]);
                }
            };
        }
        match col {
            KeyCol::Int(v) => fill!(v, encode_i64),
            KeyCol::Float(v) => fill!(v, encode_f64),
            KeyCol::Bool(v) => fill!(v, encode_bool),
        }
        off += nb;
    }
}

/// Stable LSB radix sort of `perm` by `keys[perm[i]]`, 8-bit digits.
///
/// Only the `ceil(total_bits / 8)` digit positions that can carry
/// entropy are histogrammed (in one pass) and scattered; digit positions
/// where every key agrees (one bucket holds all `n` rows) are skipped
/// entirely — the common case for keys spanning a small domain.
fn radix_sort_u64(
    keys: &[u64],
    total_bits: u32,
    perm: &mut Vec<u32>,
    tmp: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) {
    let n = keys.len();
    let digits = (total_bits.div_ceil(8) as usize).clamp(1, 8);
    counts.clear();
    counts.resize(digits * 256, 0);
    for &k in keys {
        for (d, chunk) in counts.chunks_exact_mut(256).enumerate() {
            chunk[((k >> (8 * d)) & 0xff) as usize] += 1;
        }
    }
    tmp.clear();
    tmp.resize(n, 0);
    for d in 0..digits {
        let hist = &counts[(d << 8)..(d << 8) + 256];
        if hist.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offs = [0u32; 256];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(hist) {
            *o = sum;
            sum += c;
        }
        for &i in perm.iter() {
            let b = ((keys[i as usize] >> (8 * d)) & 0xff) as usize;
            tmp[offs[b] as usize] = i;
            offs[b] += 1;
        }
        std::mem::swap(perm, tmp);
    }
}

/// Stable LSB radix sort of `perm` over row-major big-endian key bytes:
/// passes run from the last (least significant) byte to the first.
fn radix_sort_bytes(
    bytes: &[u8],
    width: usize,
    perm: &mut Vec<u32>,
    tmp: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) {
    let n = bytes.len().checked_div(width).unwrap_or(0);
    counts.clear();
    counts.resize(width * 256, 0);
    for row in 0..n {
        let base = row * width;
        for p in 0..width {
            counts[(p << 8) + bytes[base + p] as usize] += 1;
        }
    }
    tmp.clear();
    tmp.resize(n, 0);
    for p in (0..width).rev() {
        let hist = &counts[(p << 8)..(p << 8) + 256];
        if hist.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offs = [0u32; 256];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(hist) {
            *o = sum;
            sum += c;
        }
        for &i in perm.iter() {
            let b = bytes[i as usize * width + p] as usize;
            tmp[offs[b] as usize] = i;
            offs[b] += 1;
        }
        std::mem::swap(perm, tmp);
    }
}

/// Stable counting sort of `perm` by compressed keys (< 2^bits): one
/// histogram over the 2^bits-entry table, one prefix sum, one scatter —
/// no per-digit passes at all. Dispatch guarantees the table is no
/// larger than the row count, so the extra table traffic is bounded by
/// one additional pass over the data.
fn counting_sort_u64(
    keys: &[u64],
    bits: u32,
    perm: &mut Vec<u32>,
    tmp: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) {
    let n = keys.len();
    let buckets = 1usize << bits;
    counts.clear();
    counts.resize(buckets, 0);
    for &k in keys {
        counts[k as usize] += 1;
    }
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let v = *c;
        *c = sum;
        sum += v;
    }
    tmp.clear();
    tmp.resize(n, 0);
    for &i in perm.iter() {
        let slot = &mut counts[keys[i as usize] as usize];
        tmp[*slot as usize] = i;
        *slot += 1;
    }
    std::mem::swap(perm, tmp);
}

/// Stable LSB radix sort of a borrowed `perm` slice by the low `digits`
/// 8-bit digits of `keys` — the per-bucket finishing pass of
/// [`radix_sort_u64_parallel`]. Ping-pongs between `perm` and `tmp`,
/// copying back if the final pass lands in `tmp`.
fn radix_sort_u32_slice(keys: &[u64], digits: usize, perm: &mut [u32], tmp: &mut Vec<u32>) {
    let n = perm.len();
    if n <= 1 {
        return;
    }
    let mut counts = [0u32; 256];
    tmp.clear();
    tmp.resize(n, 0);
    let mut in_tmp = false;
    for d in 0..digits {
        counts.fill(0);
        let src: &[u32] = if in_tmp { tmp } else { perm };
        for &i in src {
            counts[((keys[i as usize] >> (8 * d)) & 0xff) as usize] += 1;
        }
        if counts.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offs = [0u32; 256];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(&counts) {
            *o = sum;
            sum += c;
        }
        if in_tmp {
            for &i in tmp.iter() {
                let b = ((keys[i as usize] >> (8 * d)) & 0xff) as usize;
                perm[offs[b] as usize] = i;
                offs[b] += 1;
            }
        } else {
            for &i in perm.iter() {
                let b = ((keys[i as usize] >> (8 * d)) & 0xff) as usize;
                tmp[offs[b] as usize] = i;
                offs[b] += 1;
            }
        }
        in_tmp = !in_tmp;
    }
    if in_tmp {
        perm.copy_from_slice(tmp);
    }
}

/// Deterministic multi-threaded MSB-partition radix sort: fill `perm`
/// with the stable sort permutation of `keys`, bit-identical to
/// [`radix_sort_u64`] at any thread count.
///
/// Three phases:
/// 1. The rows are split into `t` contiguous ranges; each worker
///    histograms its range's most-significant occupied digit and stably
///    partitions its range into a thread-local buffer (256 buckets,
///    original order within each bucket).
/// 2. The coordinator derives global bucket extents and groups the 256
///    buckets into `t` contiguous, size-balanced runs; each run is a
///    disjoint `&mut` slice of `perm` (`split_at_mut`).
/// 3. Each worker merges its buckets' per-range segments *in range
///    order* — re-establishing original row order within every bucket —
///    then finishes each bucket with a stable LSB radix sort of the
///    remaining low digits.
///
/// Determinism: within a bucket, concatenating the `t` stable range
/// partitions in range order yields exactly the order a single stable
/// partition of the whole array would — contiguous ranges cover rows in
/// index order. The finishing pass is a stable sort by the low digits,
/// so the final order within a bucket is (low digits, original index);
/// globally (top digit, low digits, original index) = the unique stable
/// sort by the full key, independent of `t`.
fn radix_sort_u64_parallel(keys: &[u64], total_bits: u32, threads: usize, perm: &mut Vec<u32>) {
    use crate::parallel::{par_map, split_ranges};
    let n = keys.len();
    let digits = (total_bits.div_ceil(8) as usize).clamp(1, 8);
    let top_shift = 8 * (digits - 1);
    let low_digits = digits - 1;
    let t = threads.clamp(1, n.max(1));
    let ranges = split_ranges(n, t);

    // Phase 1: per-range top-digit histogram + stable local partition.
    let (locals, _) = par_map(t, t, |w| {
        let (lo, hi) = ranges[w];
        let mut hist = [0u32; 256];
        for &k in &keys[lo..hi] {
            hist[((k >> top_shift) & 0xff) as usize] += 1;
        }
        let mut offs = [0u32; 256];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(&hist) {
            *o = sum;
            sum += c;
        }
        let mut local = vec![0u32; hi - lo];
        for (i, &k) in keys.iter().enumerate().take(hi).skip(lo) {
            let b = ((k >> top_shift) & 0xff) as usize;
            local[offs[b] as usize] = i as u32;
            offs[b] += 1;
        }
        (hist, local)
    });

    // Start offset of each bucket within each range's local buffer, and
    // global bucket sizes.
    let mut local_starts = vec![[0u32; 256]; t];
    let mut bucket_len = [0usize; 256];
    for (w, (hist, _)) in locals.iter().enumerate() {
        let mut sum = 0u32;
        for b in 0..256 {
            local_starts[w][b] = sum;
            sum += hist[b];
            bucket_len[b] += hist[b] as usize;
        }
    }

    // Phase 2: group contiguous buckets into ~n/t-row runs.
    let target = n.div_ceil(t).max(1);
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut b = 0usize;
    while b < 256 {
        let mut hi = b;
        let mut size = 0usize;
        while hi < 256 && (size == 0 || size + bucket_len[hi] <= target) {
            size += bucket_len[hi];
            hi += 1;
        }
        groups.push((b, hi));
        b = hi;
    }

    // Phase 3: merge + finish each bucket run on its own thread, writing
    // into disjoint slices of `perm`.
    perm.clear();
    perm.resize(n, 0);
    let locals = &locals;
    let local_starts = &local_starts;
    std::thread::scope(|scope| {
        let mut rest: &mut [u32] = perm.as_mut_slice();
        for &(gb_lo, gb_hi) in &groups {
            let glen: usize = bucket_len[gb_lo..gb_hi].iter().sum();
            let (slice, next) = rest.split_at_mut(glen);
            rest = next;
            scope.spawn(move || {
                let mut tmp: Vec<u32> = Vec::new();
                let mut off = 0usize;
                for b in gb_lo..gb_hi {
                    let dst = &mut slice[off..off + bucket_len[b]];
                    let mut at = 0usize;
                    for (lc, starts) in locals.iter().zip(local_starts.iter()) {
                        let seg = local_seg(lc, starts, b);
                        dst[at..at + seg.len()].copy_from_slice(seg);
                        at += seg.len();
                    }
                    if low_digits > 0 {
                        radix_sort_u32_slice(keys, low_digits, dst, &mut tmp);
                    }
                    off += dst.len();
                }
            });
        }
    });
}

/// One range's segment of bucket `b`: `local[start..start + len]`.
#[inline]
fn local_seg<'a>(
    (hist, local): &'a ([u32; 256], Vec<u32>),
    starts: &[u32; 256],
    b: usize,
) -> &'a [u32] {
    let start = starts[b] as usize;
    &local[start..start + hist[b] as usize]
}

/// How [`build_permutation`] resolved a sort request.
enum RadixPlan {
    /// Every key is equal: a stable sort is the identity, nothing to do.
    Identity,
    /// `s.perm` holds the stable sort permutation.
    Permuted,
}

/// Range-compress the key columns, encode them, and (unless the key is
/// constant) fill `s.perm` with the stable sort permutation, dispatching
/// among the normalized-key kernels per `cfg`. `None` when the
/// compressed key exceeds the width budget.
///
/// Every kernel computes the same unique stable-sort permutation, so
/// the dispatch decision can never change results — only speed.
fn build_permutation(
    cols: &[KeyCol<'_>],
    n: usize,
    s: &mut SortScratch,
    cfg: &KernelConfig,
) -> Option<(RadixPlan, SortKernel)> {
    debug_assert!(cols.len() <= MAX_KEY_BYTES);
    let mut ranges = [(0u64, 0u32); MAX_KEY_BYTES];
    let ranges = &mut ranges[..cols.len()];
    let mut total_bits = 0u32;
    let mut total_bytes = 0usize;
    for (r, col) in ranges.iter_mut().zip(cols) {
        *r = col_range(col);
        total_bits += r.1;
        total_bytes += r.1.div_ceil(8) as usize;
    }
    if total_bits == 0 {
        return Some((RadixPlan::Identity, SortKernel::Identity));
    }
    s.perm.clear();
    s.perm.extend(0..n as u32);
    let kernel = if total_bits <= 64 {
        encode_u64_biased(cols, ranges, n, &mut s.keys64);
        if total_bits <= cfg.counting_max_bits && (1u64 << total_bits) <= n as u64 {
            counting_sort_u64(
                &s.keys64,
                total_bits,
                &mut s.perm,
                &mut s.tmp,
                &mut s.counts,
            );
            SortKernel::Counting
        } else if cfg.threads > 1 && n >= cfg.parallel_min_rows {
            radix_sort_u64_parallel(&s.keys64, total_bits, cfg.threads, &mut s.perm);
            SortKernel::ParallelRadix
        } else {
            radix_sort_u64(
                &s.keys64,
                total_bits,
                &mut s.perm,
                &mut s.tmp,
                &mut s.counts,
            );
            SortKernel::RadixU64
        }
    } else if total_bytes <= MAX_KEY_BYTES {
        encode_bytes_biased(cols, ranges, total_bytes, n, &mut s.key_bytes);
        radix_sort_bytes(
            &s.key_bytes,
            total_bytes,
            &mut s.perm,
            &mut s.tmp,
            &mut s.counts,
        );
        SortKernel::RadixBytes
    } else {
        return None;
    };
    Some((RadixPlan::Permuted, kernel))
}

/// Sort `batch` into C-style coordinate order with the normalized-key
/// kernels, dispatching per `cfg`. Returns the kernel that ran, or
/// `None` without touching the batch when the coordinate key does not
/// fit the width budget even after range compression (the caller falls
/// back to the comparator sort).
///
/// Every kernel is stable, and therefore bit-identical to the
/// comparator path — and to every other kernel.
pub fn sort_c_order_keyed(batch: &mut CellBatch, cfg: &KernelConfig) -> Option<SortKernel> {
    with_scratch(|s| {
        let n = batch.len();
        let (plan, kernel) = {
            let cols = coord_key_cols(batch)?;
            build_permutation(&cols, n, s, cfg)?
        };
        if let RadixPlan::Permuted = plan {
            let SortScratch { perm, gather, .. } = s;
            batch.permute_u32(perm, gather);
        }
        Some(kernel)
    })
}

/// Sort `batch` rows by the given attribute columns with the
/// normalized-key kernels, dispatching per `cfg`. Returns the kernel
/// that ran, or `None` without touching the batch when the key does not
/// normalize (string column, or compressed width budget exceeded).
pub fn sort_by_attr_columns_keyed(
    batch: &mut CellBatch,
    cols: &[usize],
    cfg: &KernelConfig,
) -> Option<SortKernel> {
    with_scratch(|s| {
        let n = batch.len();
        let (plan, kernel) = {
            let (kc, _) = attr_key_cols(batch, cols)?;
            build_permutation(&kc, n, s, cfg)?
        };
        if let RadixPlan::Permuted = plan {
            let SortScratch { perm, gather, .. } = s;
            batch.permute_u32(perm, gather);
        }
        Some(kernel)
    })
}

/// Radix-sort `batch` into C-style coordinate order (kernel forced to
/// the plain radix family). Returns `false` without touching the batch
/// when the key does not fit the width budget.
pub fn radix_sort_c_order(batch: &mut CellBatch) -> bool {
    sort_c_order_keyed(batch, &KernelConfig::radix_only()).is_some()
}

/// Radix-sort `batch` rows by the given attribute columns (kernel forced
/// to the plain radix family). Returns `false` without touching the
/// batch when the key does not normalize.
pub fn radix_sort_by_attr_columns(batch: &mut CellBatch, cols: &[usize]) -> bool {
    sort_by_attr_columns_keyed(batch, cols, &KernelConfig::radix_only()).is_some()
}

/// Encode the given attribute key columns of every row into one
/// order-preserving `u64` each, when the combined width fits 8 bytes.
///
/// Used by the merge join: equal-key runs and cross-side comparisons
/// become `u64` equality. `None` when any column is a string or the key
/// is wider than 8 bytes. Unlike the sort kernels, this encoding is
/// *not* range-compressed: two batches encoded independently must yield
/// directly comparable keys.
pub fn encode_rows_u64(batch: &CellBatch, cols: &[usize]) -> Option<Vec<u64>> {
    let (kc, width) = attr_key_cols(batch, cols)?;
    if width > 8 {
        return None;
    }
    let mut keys = vec![0u64; batch.len()];
    for (ci, col) in kc.iter().enumerate() {
        // Earlier columns are more significant: shift what is already
        // packed left by the new column's width, then OR it in. The
        // first column assigns (its own width may be the full 64 bits).
        let shift = (8 * col.width()) as u32;
        macro_rules! fill {
            ($v:expr, $enc:expr) => {
                if ci == 0 {
                    for (k, &x) in keys.iter_mut().zip($v.iter()) {
                        *k = $enc(x);
                    }
                } else {
                    for (k, &x) in keys.iter_mut().zip($v.iter()) {
                        *k = (*k << shift) | $enc(x);
                    }
                }
            };
        }
        match col {
            KeyCol::Int(v) => fill!(v, encode_i64),
            KeyCol::Float(v) => fill!(v, encode_f64),
            KeyCol::Bool(v) => fill!(v, encode_bool),
        }
    }
    Some(keys)
}

/// Stable radix sort of `(key, payload)` pairs by key — the chunk-id
/// regrouping kernel of [`crate::array::Array::from_batch`]. `tmp` is a
/// caller-owned scatter buffer (reused across calls).
pub fn sort_u64_pairs(pairs: &mut Vec<(u64, u32)>, tmp: &mut Vec<(u64, u32)>) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    let mut counts = vec![0u32; 8 * 256];
    for &(k, _) in pairs.iter() {
        for d in 0..8 {
            counts[(d << 8) + ((k >> (8 * d)) & 0xff) as usize] += 1;
        }
    }
    tmp.clear();
    tmp.resize(n, (0, 0));
    for d in 0..8 {
        let hist = &counts[(d << 8)..(d << 8) + 256];
        if hist.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offs = [0u32; 256];
        let mut sum = 0u32;
        for (o, &c) in offs.iter_mut().zip(hist) {
            *o = sum;
            sum += c;
        }
        for &(k, p) in pairs.iter() {
            let b = ((k >> (8 * d)) & 0xff) as usize;
            tmp[offs[b] as usize] = (k, p);
            offs[b] += 1;
        }
        std::mem::swap(pairs, tmp);
    }
}

/// FNV-1a over a raw byte stream — the core of
/// [`crate::ops::hash_key`], exposed so columnar callers can hash rows
/// without materializing [`crate::value::Value`]s.
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    #[inline]
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Final avalanche so low bits are well-mixed for `% nbuckets`.
#[inline]
pub(crate) fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    x
}

/// Hash the key columns of one row, reading columns directly.
///
/// Produces bit-identical output to [`crate::ops::hash_key`] over the
/// row's materialized [`crate::value::Value`]s — integral floats within
/// `i64` range hash like the corresponding integer, exactly as
/// `Value::hash` normalizes them — so bucket routing is unchanged while
/// skipping the per-row key allocation.
pub fn hash_row(batch: &CellBatch, cols: &[usize], row: usize) -> u64 {
    let mut h = Fnv::new();
    for &c in cols {
        match &batch.attrs[c] {
            Column::Int(v) => {
                h.write(&[0]);
                h.write(&v[row].to_ne_bytes());
            }
            Column::Float(v) => {
                let f = v[row];
                if f.fract() == 0.0 && f.is_finite() && f >= i64::MIN as f64 && f <= i64::MAX as f64
                {
                    h.write(&[0]);
                    h.write(&(f as i64).to_ne_bytes());
                } else {
                    h.write(&[1]);
                    h.write(&f.to_bits().to_ne_bytes());
                }
            }
            Column::Bool(v) => {
                h.write(&[2]);
                h.write(&[v[row] as u8]);
            }
            Column::Str(v) => {
                h.write(&[3]);
                h.write(v[row].as_bytes());
                h.write(&[0xff]);
            }
        }
    }
    avalanche(h.0)
}

/// FNV-1a over a short, fixed-length byte string. `#[inline]` + constant
/// length lets the compiler unroll the whole xor/multiply chain, so the
/// batched hashers below compile to straight-line code per row.
#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[inline]
fn fnv_tagged_i64(h: u64, x: i64) -> u64 {
    fnv_bytes(fnv_bytes(h, &[0]), &x.to_ne_bytes())
}

/// Hash the key columns of rows `lo..hi` into `out`, one `u64` per row,
/// bit-identical per row to [`hash_row`].
///
/// This is the batched (column-outer, row-inner) form: the column-type
/// dispatch is hoisted out of the row loop and each column's contribution
/// is folded into a running per-row hash state with a fully unrolled
/// FNV chain — the chunked inner loop the hash join and hash-bucket
/// routing run instead of per-row [`hash_row`] calls.
pub fn hash_rows_range_into(
    batch: &CellBatch,
    cols: &[usize],
    lo: usize,
    hi: usize,
    out: &mut Vec<u64>,
) {
    debug_assert!(lo <= hi && hi <= batch.len());
    out.clear();
    out.resize(hi - lo, 0xcbf29ce484222325);
    for &c in cols {
        match &batch.attrs[c] {
            Column::Int(v) => {
                for (h, &x) in out.iter_mut().zip(&v[lo..hi]) {
                    *h = fnv_tagged_i64(*h, x);
                }
            }
            Column::Float(v) => {
                for (h, &f) in out.iter_mut().zip(&v[lo..hi]) {
                    if f.fract() == 0.0
                        && f.is_finite()
                        && f >= i64::MIN as f64
                        && f <= i64::MAX as f64
                    {
                        *h = fnv_tagged_i64(*h, f as i64);
                    } else {
                        *h = fnv_bytes(fnv_bytes(*h, &[1]), &f.to_bits().to_ne_bytes());
                    }
                }
            }
            Column::Bool(v) => {
                for (h, &x) in out.iter_mut().zip(&v[lo..hi]) {
                    *h = fnv_bytes(*h, &[2, x as u8]);
                }
            }
            Column::Str(v) => {
                for (h, s) in out.iter_mut().zip(&v[lo..hi]) {
                    *h = fnv_bytes(fnv_bytes(fnv_bytes(*h, &[3]), s.as_bytes()), &[0xff]);
                }
            }
        }
    }
    for h in out.iter_mut() {
        *h = avalanche(*h);
    }
}

/// Hash the key columns of every row into `out` — see
/// [`hash_rows_range_into`].
pub fn hash_rows_into(batch: &CellBatch, cols: &[usize], out: &mut Vec<u64>) {
    hash_rows_range_into(batch, cols, 0, batch.len(), out);
}

/// Length of the run of equal keys starting at `start` (≥ 1 for any
/// in-bounds `start`).
///
/// The scan compares eight keys per iteration with a branch-free
/// all-equal reduction, so the common long-run case runs at memory
/// bandwidth instead of one compare-and-branch per element — the merge
/// join's equal-run detector over normalized `u64` keys.
pub fn key_run_len(keys: &[u64], start: usize) -> usize {
    let k = keys[start];
    let mut i = start + 1;
    while i + 8 <= keys.len() {
        let c = &keys[i..i + 8];
        let mut all = true;
        for &x in c {
            all &= x == k;
        }
        if !all {
            break;
        }
        i += 8;
    }
    while i < keys.len() && keys[i] == k {
        i += 1;
    }
    i - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::hash_key;
    use crate::value::Value;
    use std::cmp::Ordering;

    #[test]
    fn i64_encoding_preserves_order() {
        let xs = [
            i64::MIN,
            i64::MIN + 1,
            -9_000_000_000,
            -1,
            0,
            1,
            42,
            i64::MAX - 1,
            i64::MAX,
        ];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(encode_i64(a).cmp(&encode_i64(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn f64_encoding_matches_total_cmp() {
        let xs = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            f64::MAX,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(
                    encode_f64(a).cmp(&encode_f64(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn bool_encoding_preserves_order() {
        assert!(encode_bool(false) < encode_bool(true));
    }

    /// `CellBatch` equality with floats compared by bit pattern (derived
    /// `PartialEq` would fail on NaN even for identical batches).
    fn assert_bit_identical(a: &CellBatch, b: &CellBatch) {
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.nattrs(), b.nattrs());
        for (ca, cb) in a.attrs.iter().zip(&b.attrs) {
            match (ca, cb) {
                (Column::Float(x), Column::Float(y)) => {
                    let xb: Vec<u64> = x.iter().map(|f| f.to_bits()).collect();
                    let yb: Vec<u64> = y.iter().map(|f| f.to_bits()).collect();
                    assert_eq!(xb, yb);
                }
                _ => assert_eq!(ca, cb),
            }
        }
    }

    fn sample_batch() -> CellBatch {
        let mut b = CellBatch::new(2, &[DataType::Int64, DataType::Float64]);
        for (i, j, v, f) in [
            (2, 1, 10, 0.5),
            (1, 2, 20, -1.5),
            (1, 1, 30, f64::NAN),
            (-3, 7, 40, 0.0),
            (1, 1, 50, -0.0),
        ] {
            b.push(&[i, j], &[Value::Int(v), Value::Float(f)]).unwrap();
        }
        b
    }

    #[test]
    fn radix_c_order_matches_comparator() {
        let mut radix = sample_batch();
        let mut cmp = sample_batch();
        assert!(radix_sort_c_order(&mut radix));
        cmp.sort_c_order_comparator();
        assert_bit_identical(&radix, &cmp);
    }

    #[test]
    fn radix_attr_sort_matches_comparator() {
        for cols in [vec![0usize], vec![1], vec![1, 0]] {
            let mut radix = sample_batch();
            let mut cmp = sample_batch();
            assert!(radix_sort_by_attr_columns(&mut radix, &cols));
            cmp.sort_by_attr_columns_comparator(&cols);
            assert_bit_identical(&radix, &cmp);
        }
    }

    #[test]
    fn string_keys_fall_back() {
        let mut b = CellBatch::new(0, &[DataType::Str]);
        b.push(&[], &[Value::Str("b".into())]).unwrap();
        b.push(&[], &[Value::Str("a".into())]).unwrap();
        assert!(!radix_sort_by_attr_columns(&mut b, &[0]));
        // Untouched on fallback.
        assert_eq!(b.value(0, 0), Value::Str("b".into()));
    }

    #[test]
    fn wide_keys_use_byte_matrix() {
        // Three full-range columns (64 compressed bits each) exceed the
        // u64 budget but stay within MAX_KEY_BYTES.
        let mut b = CellBatch::new(3, &[DataType::Int64]);
        let mut cmp_b;
        for (n, (i, j, k)) in [
            (i64::MAX, 1, i64::MIN),
            (i64::MIN, i64::MAX, 0),
            (i64::MAX, 1, -9),
            (0, i64::MIN, i64::MAX),
            (i64::MAX, 1, i64::MIN),
        ]
        .into_iter()
        .enumerate()
        {
            b.push(&[i, j, k], &[Value::Int(n as i64)]).unwrap();
        }
        cmp_b = b.clone();
        assert!(radix_sort_c_order(&mut b));
        cmp_b.sort_c_order_comparator();
        assert_eq!(b, cmp_b);
    }

    #[test]
    fn five_full_range_dims_fall_back() {
        // Five 64-bit columns need 40 compressed bytes > MAX_KEY_BYTES.
        let mut b = CellBatch::new(5, &[]);
        b.push(&[i64::MIN, i64::MIN, i64::MIN, i64::MIN, i64::MIN], &[])
            .unwrap();
        b.push(&[i64::MAX, i64::MAX, i64::MAX, i64::MAX, i64::MAX], &[])
            .unwrap();
        b.push(&[0, 0, 0, 0, 0], &[]).unwrap();
        assert!(!radix_sort_c_order(&mut b));
        // Untouched on fallback.
        assert_eq!(b.coords[0][0], i64::MIN);
    }

    #[test]
    fn narrow_domains_compress_into_u64() {
        // Eight small-domain dimensions: 64 uncompressed bytes, but only
        // a few bits each after range compression — still radix-sortable,
        // and bit-identical to the comparator.
        let mut b = CellBatch::new(8, &[DataType::Int64]);
        let mut cmp_b;
        for n in 0..200i64 {
            let c: Vec<i64> = (0..8).map(|d| (n * 37 + d * 11) % 5 - 2).collect();
            b.push(&c, &[Value::Int(n)]).unwrap();
        }
        cmp_b = b.clone();
        assert!(radix_sort_c_order(&mut b));
        cmp_b.sort_c_order_comparator();
        assert_eq!(b, cmp_b);
    }

    #[test]
    fn constant_keys_leave_rows_in_place() {
        let mut b = CellBatch::new(2, &[DataType::Int64]);
        for n in 0..10 {
            b.push(&[7, -3], &[Value::Int(n)]).unwrap();
        }
        let before = b.clone();
        assert!(radix_sort_c_order(&mut b));
        assert_eq!(b, before);
    }

    #[test]
    fn encode_rows_u64_orders_like_comparator() {
        let b = sample_batch();
        let keys = encode_rows_u64(&b, &[1]).unwrap();
        for a in 0..b.len() {
            for c in 0..b.len() {
                assert_eq!(
                    keys[a].cmp(&keys[c]),
                    b.cmp_by_attr_columns(&[1], a, c),
                    "rows {a},{c}"
                );
            }
        }
        // Two 8-byte columns exceed the single-u64 budget.
        assert!(encode_rows_u64(&b, &[0, 1]).is_none());
    }

    #[test]
    fn sort_u64_pairs_is_stable() {
        let mut pairs: Vec<(u64, u32)> = vec![(3, 0), (1, 1), (3, 2), (1, 3), (u64::MAX, 4)];
        let mut expect = pairs.clone();
        expect.sort_by_key(|&(k, _)| k);
        let mut tmp = Vec::new();
        sort_u64_pairs(&mut pairs, &mut tmp);
        assert_eq!(pairs, expect);
    }

    #[test]
    fn hash_row_matches_hash_key() {
        let mut b = CellBatch::new(
            0,
            &[
                DataType::Int64,
                DataType::Float64,
                DataType::Bool,
                DataType::Str,
            ],
        );
        for (i, f, x, s) in [
            (42, 42.0, true, "hi"),
            (-1, 0.5, false, ""),
            (i64::MAX, f64::NAN, true, "ütf8"),
            (0, -0.0, false, "end"),
        ] {
            b.push(
                &[],
                &[
                    Value::Int(i),
                    Value::Float(f),
                    Value::Bool(x),
                    Value::Str(s.into()),
                ],
            )
            .unwrap();
        }
        for row in 0..b.len() {
            for cols in [vec![0usize], vec![1], vec![2], vec![3], vec![0, 1, 2, 3]] {
                let vals: Vec<Value> = cols.iter().map(|&c| b.value(row, c)).collect();
                assert_eq!(
                    hash_row(&b, &cols, row),
                    hash_key(&vals),
                    "row {row} cols {cols:?}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_sorts() {
        let mut b = CellBatch::new(1, &[DataType::Int64]);
        assert!(radix_sort_c_order(&mut b));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn i64_boundary_coordinates_sort() {
        let mut b = CellBatch::new(1, &[DataType::Int64]);
        for (c, v) in [(i64::MAX, 1), (i64::MIN, 2), (0, 3), (i64::MIN, 4), (-1, 5)] {
            b.push(&[c], &[Value::Int(v)]).unwrap();
        }
        assert!(radix_sort_c_order(&mut b));
        let coords: Vec<i64> = (0..b.len()).map(|i| b.coords[0][i]).collect();
        assert_eq!(coords, vec![i64::MIN, i64::MIN, -1, 0, i64::MAX]);
        // Stability among the two i64::MIN rows.
        assert_eq!(b.value(0, 0), Value::Int(2));
        assert_eq!(b.value(1, 0), Value::Int(4));
        assert_eq!(b.cmp_coords(0, 1), Ordering::Equal);
    }

    /// Pseudo-random batch: one coordinate in ±`domain`, attr = row id
    /// (so stability violations are visible).
    fn lcg_batch(n: usize, domain: i64, seed: u64) -> CellBatch {
        let mut b = CellBatch::new(1, &[DataType::Int64]);
        let mut x = seed | 1;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = (x >> 33) as i64 % (domain + 1) - domain / 2;
            b.push(&[c], &[Value::Int(i as i64)]).unwrap();
        }
        b
    }

    #[test]
    fn counting_sort_matches_comparator_and_is_chosen() {
        // 6-bit domain over 1000 rows: table (64) « rows, counting fires.
        let b0 = lcg_batch(1000, 60, 99);
        let cfg = KernelConfig {
            counting_max_bits: 16,
            ..KernelConfig::radix_only()
        };
        let mut b = b0.clone();
        assert_eq!(sort_c_order_keyed(&mut b, &cfg), Some(SortKernel::Counting));
        let mut cmp = b0.clone();
        cmp.sort_c_order_comparator();
        assert_eq!(b, cmp);
        // Same domain but only 30 rows: the table would exceed the row
        // count, so dispatch falls back to radix.
        let mut small = lcg_batch(30, 60, 99);
        assert_eq!(
            sort_c_order_keyed(&mut small, &cfg),
            Some(SortKernel::RadixU64)
        );
    }

    #[test]
    fn parallel_radix_is_bit_identical_across_thread_counts() {
        for domain in [100i64, 3_000_000] {
            let b0 = lcg_batch(5000, domain, 7);
            let mut cmp = b0.clone();
            cmp.sort_c_order_comparator();
            for t in [1usize, 2, 3, 8] {
                let cfg = KernelConfig {
                    parallel_min_rows: 0,
                    threads: t,
                    ..KernelConfig::radix_only()
                };
                let mut b = b0.clone();
                let kernel = sort_c_order_keyed(&mut b, &cfg).unwrap();
                if t > 1 {
                    assert_eq!(kernel, SortKernel::ParallelRadix, "threads={t}");
                }
                assert_eq!(b, cmp, "threads={t} domain={domain}");
            }
        }
    }

    #[test]
    fn parallel_radix_handles_tiny_and_single_digit_keys() {
        for n in [0usize, 1, 2, 9] {
            let b0 = lcg_batch(n, 5, 3);
            let mut cmp = b0.clone();
            cmp.sort_c_order_comparator();
            let cfg = KernelConfig {
                parallel_min_rows: 0,
                threads: 8,
                ..KernelConfig::radix_only()
            };
            let mut b = b0.clone();
            assert!(sort_c_order_keyed(&mut b, &cfg).is_some());
            assert_eq!(b, cmp, "n={n}");
        }
    }

    #[test]
    fn hash_rows_into_matches_hash_row() {
        let mut b = CellBatch::new(
            0,
            &[
                DataType::Int64,
                DataType::Float64,
                DataType::Bool,
                DataType::Str,
            ],
        );
        for (i, f, x, s) in [
            (42, 42.0, true, "hi"),
            (-1, 0.5, false, ""),
            (i64::MAX, f64::NAN, true, "ütf8"),
            (0, -0.0, false, "end"),
            (7, f64::INFINITY, true, "tail"),
        ] {
            b.push(
                &[],
                &[
                    Value::Int(i),
                    Value::Float(f),
                    Value::Bool(x),
                    Value::Str(s.into()),
                ],
            )
            .unwrap();
        }
        let mut out = Vec::new();
        for cols in [vec![0usize], vec![1], vec![2], vec![3], vec![0, 1, 2, 3]] {
            hash_rows_into(&b, &cols, &mut out);
            for (row, h) in out.iter().enumerate().take(b.len()) {
                assert_eq!(*h, hash_row(&b, &cols, row), "row {row} cols {cols:?}");
            }
            hash_rows_range_into(&b, &cols, 1, 4, &mut out);
            for (j, row) in (1..4).enumerate() {
                assert_eq!(out[j], hash_row(&b, &cols, row), "range row {row}");
            }
        }
    }

    #[test]
    fn key_run_len_matches_scalar_scan() {
        let mut keys = Vec::new();
        for (k, len) in [(3u64, 1usize), (5, 9), (1, 20), (9, 8), (2, 3)] {
            keys.extend(std::iter::repeat_n(k, len));
        }
        let mut i = 0;
        while i < keys.len() {
            let mut expect = 1;
            while i + expect < keys.len() && keys[i + expect] == keys[i] {
                expect += 1;
            }
            assert_eq!(key_run_len(&keys, i), expect, "at {i}");
            i += expect;
        }
    }
}
