//! Scalar values and data types stored in array cells.
//!
//! The Array Data Model (paper §2.1) gives every attribute a scalar type.
//! The paper's examples use `int` and `float`; we additionally support
//! booleans and strings so that realistic science schemas (ship
//! identifiers, quality flags) can be expressed.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{ArrayError, Result};

/// The scalar type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`int` in the paper's schema syntax).
    Int64,
    /// 64-bit IEEE float (`float`).
    Float64,
    /// Boolean flag (`bool`).
    Bool,
    /// UTF-8 string (`string`).
    Str,
}

impl DataType {
    /// Parse a type name as written in schema literals.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "int" | "int64" | "int32" => Ok(DataType::Int64),
            "float" | "double" | "float64" => Ok(DataType::Float64),
            "bool" => Ok(DataType::Bool),
            "string" | "str" => Ok(DataType::Str),
            other => Err(ArrayError::Parse(format!("unknown data type `{other}`"))),
        }
    }

    /// Canonical name used when rendering schemas.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int64 => "int",
            DataType::Float64 => "float",
            DataType::Bool => "bool",
            DataType::Str => "string",
        }
    }

    /// Approximate stored size of one value of this type, in bytes.
    /// Used by the cost model to translate cell counts into transfer bytes.
    pub fn byte_width(&self) -> usize {
        match self {
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Bool => 1,
            DataType::Str => 16,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
///
/// `Value` provides a *total* order (floats via `f64::total_cmp`) and a
/// consistent `Hash` (floats via bit pattern) so values can serve as join
/// keys in hash joins and as sort keys in merge joins.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Extract an integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Convert this value to a dimension coordinate.
    ///
    /// Dimensions are integer-valued (paper §2.1), so only integral values
    /// (and floats that are exactly integral) can become coordinates. This
    /// is the conversion used by `redim` when promoting an attribute to a
    /// dimension.
    pub fn to_coord(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() => Ok(*v as i64),
            other => Err(ArrayError::TypeMismatch {
                expected: "integer coordinate".into(),
                actual: format!("{other}"),
            }),
        }
    }

    /// Numeric comparison rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed numeric comparison: joins may compare int attributes
            // with float attributes; compare numerically, then break the
            // (rare) exact ties by type rank so the order stays total.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(0);
                v.hash(state);
            }
            Value::Float(v) => {
                // Hash floats that are exactly integral the same way as the
                // corresponding integer so `Int(2) == Float(2.0)` implies
                // equal hashes (required for mixed-type hash joins).
                if v.fract() == 0.0
                    && v.is_finite()
                    && *v >= i64::MIN as f64
                    && *v <= i64::MAX as f64
                {
                    state.write_u8(0);
                    (*v as i64).hash(state);
                } else {
                    state.write_u8(1);
                    v.to_bits().hash(state);
                }
            }
            Value::Bool(v) => {
                state.write_u8(2);
                v.hash(state);
            }
            Value::Str(v) => {
                state.write_u8(3);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_parse_roundtrip() {
        for name in ["int", "float", "bool", "string"] {
            let dt = DataType::parse(name).unwrap();
            assert_eq!(dt.name(), name);
        }
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp places NaN above all finite values.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // Exact numeric ties are broken by type rank for a total order.
        assert!(Value::Int(2) < Value::Float(2.0));
    }

    #[test]
    fn integral_float_hashes_like_int() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
        assert_ne!(hash_of(&Value::Float(42.5)), hash_of(&Value::Int(42)));
    }

    #[test]
    fn to_coord_conversions() {
        assert_eq!(Value::Int(7).to_coord().unwrap(), 7);
        assert_eq!(Value::Float(7.0).to_coord().unwrap(), 7);
        assert!(Value::Float(7.5).to_coord().is_err());
        assert!(Value::Str("x".into()).to_coord().is_err());
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
    }

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::Int64.byte_width(), 8);
        assert_eq!(DataType::Bool.byte_width(), 1);
    }
}
