//! The `Array` container: a schema plus its stored (non-empty) chunks.

use std::collections::BTreeMap;

use crate::batch::CellBatch;
use crate::chunk::Chunk;
use crate::error::{ArrayError, Result};
use crate::keys;
use crate::schema::ArraySchema;
use crate::value::Value;

/// A materialized array: schema plus sparse chunk storage.
///
/// Chunks are keyed by their linear chunk id; only chunks with at least one
/// occupied cell are stored (paper §2.1: "The database engine only stores
/// occupied cells, making it efficient for sparse arrays").
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    /// The array's logical schema.
    pub schema: ArraySchema,
    chunks: BTreeMap<u64, Chunk>,
}

impl Array {
    /// An empty array with the given schema.
    pub fn new(schema: ArraySchema) -> Self {
        Array {
            schema,
            chunks: BTreeMap::new(),
        }
    }

    /// Build an array from an iterator of `(coord, values)` cells.
    pub fn from_cells<I>(schema: ArraySchema, cells: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<i64>, Vec<Value>)>,
    {
        let mut array = Array::new(schema);
        for (coord, values) in cells {
            array.insert(&coord, &values)?;
        }
        array.sort_chunks();
        Ok(array)
    }

    /// Insert one cell, routing it to its chunk.
    ///
    /// Chunks are left potentially unsorted; call [`sort_chunks`]
    /// (or build via [`from_cells`], which sorts) before operations that
    /// require C-order.
    ///
    /// [`sort_chunks`]: Self::sort_chunks
    /// [`from_cells`]: Self::from_cells
    pub fn insert(&mut self, coord: &[i64], values: &[Value]) -> Result<()> {
        let pos = self.schema.chunk_pos_of(coord)?;
        let id = self.schema.linear_chunk_id(&pos);
        let chunk = self
            .chunks
            .entry(id)
            .or_insert_with(|| Chunk::new(&self.schema, pos));
        chunk.push(coord, values)
    }

    /// Bulk-load a batch of cells, building chunks column-wise.
    ///
    /// Much faster than per-cell [`insert`](Self::insert) for large
    /// batches: rows are grouped by chunk id and copied column-at-a-time.
    /// Chunks are left unsorted; call [`sort_chunks`](Self::sort_chunks)
    /// if C-order is needed.
    pub fn from_batch(schema: ArraySchema, batch: &CellBatch) -> Result<Self> {
        let n = batch.len();
        if batch.ndims() != schema.ndims() {
            return Err(ArrayError::ArityMismatch {
                expected: schema.ndims(),
                actual: batch.ndims(),
            });
        }
        // Linear chunk id per row.
        let mut ids: Vec<(u64, u32)> = Vec::with_capacity(n);
        for row in 0..n {
            let mut id = 0u64;
            for (d, dim) in schema.dims.iter().enumerate() {
                let idx = dim.chunk_index(batch.coords[d][row])?;
                id = id * dim.chunk_count() + idx;
            }
            ids.push((id, row as u32));
        }
        // Stable radix sort by chunk id: rows were appended in ascending
        // order, so equal-id runs stay in row order — identical grouping
        // to a comparison sort of (id, row) pairs.
        let mut pair_tmp: Vec<(u64, u32)> = Vec::new();
        crate::keys::sort_u64_pairs(&mut ids, &mut pair_tmp);
        let mut array = Array::new(schema);
        let mut indices: Vec<usize> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let id = ids[start].0;
            let mut end = start + 1;
            while end < n && ids[end].0 == id {
                end += 1;
            }
            indices.clear();
            indices.extend(ids[start..end].iter().map(|&(_, r)| r as usize));
            let cells = batch.take(&indices);
            let pos = array.schema.chunk_pos_from_id(id);
            let sorted = cells.is_sorted_c_order();
            array.chunks.insert(id, Chunk { pos, cells, sorted });
            start = end;
        }
        Ok(array)
    }

    /// Sort the cells of every chunk into C-order.
    pub fn sort_chunks(&mut self) {
        self.sort_chunks_with(&keys::KernelConfig::default());
    }

    /// Sort every chunk with explicit dispatch thresholds; returns
    /// `(kernel, chunks)` counts in [`keys::SortKernel::ALL`] order with
    /// zero counts omitted — deterministic for a given array and config,
    /// ready for the `kernel_dispatch` telemetry span.
    pub fn sort_chunks_with(&mut self, cfg: &keys::KernelConfig) -> Vec<(keys::SortKernel, usize)> {
        let mut counts = [0usize; keys::SortKernel::ALL.len()];
        for chunk in self.chunks.values_mut() {
            counts[chunk.sort_with(cfg) as usize] += 1;
        }
        keys::SortKernel::ALL
            .into_iter()
            .zip(counts)
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Whether every stored chunk is flagged sorted.
    pub fn all_sorted(&self) -> bool {
        self.chunks.values().all(|c| c.sorted)
    }

    /// Total occupied cells across all chunks.
    pub fn cell_count(&self) -> usize {
        self.chunks.values().map(Chunk::cell_count).sum()
    }

    /// Number of stored (non-empty) chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate stored bytes.
    pub fn byte_size(&self) -> usize {
        self.chunks.values().map(Chunk::byte_size).sum()
    }

    /// The chunk with linear id `id`, if stored.
    pub fn chunk(&self, id: u64) -> Option<&Chunk> {
        self.chunks.get(&id)
    }

    /// Iterate over `(linear_id, chunk)` pairs in id order.
    pub fn chunks(&self) -> impl Iterator<Item = (u64, &Chunk)> {
        self.chunks.iter().map(|(&id, c)| (id, c))
    }

    /// Consume the array, yielding its chunks in id order.
    pub fn into_chunks(self) -> impl Iterator<Item = (u64, Chunk)> {
        self.chunks.into_iter()
    }

    /// Insert a whole chunk (e.g. received from another node). Cells must
    /// belong to the chunk's region; merged into any existing chunk at the
    /// same position.
    pub fn insert_chunk(&mut self, chunk: Chunk) -> Result<()> {
        chunk.validate(&self.schema)?;
        let id = self.schema.linear_chunk_id(&chunk.pos);
        match self.chunks.get_mut(&id) {
            None => {
                self.chunks.insert(id, chunk);
            }
            Some(existing) => {
                existing.cells.append(chunk.cells)?;
                existing.sorted = false;
            }
        }
        Ok(())
    }

    /// Look up the attribute values at `coord`, if the cell is occupied.
    ///
    /// Linear scan within the target chunk (binary search when sorted).
    pub fn get(&self, coord: &[i64]) -> Result<Option<Vec<Value>>> {
        let pos = self.schema.chunk_pos_of(coord)?;
        let id = self.schema.linear_chunk_id(&pos);
        let Some(chunk) = self.chunks.get(&id) else {
            return Ok(None);
        };
        let n = chunk.cells.len();
        let matches = |i: usize| -> bool {
            chunk
                .cells
                .coords
                .iter()
                .zip(coord)
                .all(|(col, &c)| col[i] == c)
        };
        if chunk.sorted {
            // Binary search on C-order.
            let mut lo = 0usize;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let cmp = Self::cmp_coord_at(&chunk.cells, mid, coord);
                match cmp {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => {
                        return Ok(Some(
                            (0..chunk.cells.nattrs())
                                .map(|a| chunk.cells.value(mid, a))
                                .collect(),
                        ))
                    }
                }
            }
            Ok(None)
        } else {
            for i in 0..n {
                if matches(i) {
                    return Ok(Some(
                        (0..chunk.cells.nattrs())
                            .map(|a| chunk.cells.value(i, a))
                            .collect(),
                    ));
                }
            }
            Ok(None)
        }
    }

    fn cmp_coord_at(cells: &CellBatch, i: usize, coord: &[i64]) -> std::cmp::Ordering {
        for (col, &c) in cells.coords.iter().zip(coord) {
            match col[i].cmp(&c) {
                std::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Iterate over every occupied cell as `(coord, values)`.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Vec<i64>, Vec<Value>)> + '_ {
        self.chunks.values().flat_map(|c| c.cells.iter_cells())
    }

    /// Gather all cells into one batch (chunking discarded).
    pub fn to_batch(&self) -> CellBatch {
        let attr_types: Vec<_> = self.schema.attrs.iter().map(|a| a.dtype).collect();
        let mut batch =
            CellBatch::with_capacity(self.schema.ndims(), &attr_types, self.cell_count());
        for chunk in self.chunks.values() {
            batch
                .append(chunk.cells.clone())
                .expect("chunk batches share the array schema");
        }
        batch
    }

    /// Validate every chunk against the schema and check that no cell
    /// coordinate appears twice (arrays are functions from coordinates to
    /// attribute tuples).
    pub fn validate(&self) -> Result<()> {
        self.schema.validate()?;
        for (id, chunk) in &self.chunks {
            chunk.validate(&self.schema)?;
            if self.schema.linear_chunk_id(&chunk.pos) != *id {
                return Err(ArrayError::SchemaMismatch(format!(
                    "chunk stored under id {id} but its position maps to {}",
                    self.schema.linear_chunk_id(&chunk.pos)
                )));
            }
            // Duplicate-coordinate check within the chunk.
            let mut seen: Vec<Vec<i64>> = (0..chunk.cells.len())
                .map(|i| chunk.cells.coord(i))
                .collect();
            seen.sort_unstable();
            for w in seen.windows(2) {
                if w[0] == w[1] {
                    return Err(ArrayError::CellCollision {
                        coord: format!("{:?}", w[0]),
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-chunk cell counts keyed by linear chunk id — the basic statistic
    /// behind skew measurement and physical planning.
    pub fn chunk_histogram(&self) -> BTreeMap<u64, usize> {
        self.chunks
            .iter()
            .map(|(&id, c)| (id, c.cell_count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_array() -> Array {
        // Paper Figure 1: A<v1:int, v2:float>[i=1,6,3, j=1,6,3] with
        // occupied cells in the first and last logical chunks only.
        let schema = ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
        let cells = vec![
            (vec![1, 2], vec![Value::Int(3), Value::Float(1.1)]),
            (vec![1, 3], vec![Value::Int(1), Value::Float(4.7)]),
            (vec![2, 1], vec![Value::Int(1), Value::Float(0.2)]),
            (vec![2, 2], vec![Value::Int(7), Value::Float(1.3)]),
            (vec![3, 1], vec![Value::Int(4), Value::Float(1.9)]),
            (vec![3, 2], vec![Value::Int(0), Value::Float(0.4)]),
            (vec![3, 3], vec![Value::Int(0), Value::Float(7.5)]),
            // last chunk
            (vec![4, 4], vec![Value::Int(6), Value::Float(1.4)]),
            (vec![5, 5], vec![Value::Int(3), Value::Float(1.4)]),
            (vec![6, 6], vec![Value::Int(5), Value::Float(8.7)]),
        ];
        Array::from_cells(schema, cells).unwrap()
    }

    #[test]
    fn figure1_stores_two_chunks() {
        let a = figure1_array();
        assert_eq!(a.chunk_count(), 2);
        assert_eq!(a.cell_count(), 10);
        a.validate().unwrap();
        // First chunk serializes v1 as (3,1,1,7,4,0,0).
        let first = a.chunk(0).unwrap();
        let v1: Vec<i64> = (0..first.cell_count())
            .map(|i| first.cells.value(i, 0).as_int().unwrap())
            .collect();
        assert_eq!(v1, vec![3, 1, 1, 7, 4, 0, 0]);
    }

    #[test]
    fn get_occupied_and_empty_cells() {
        let a = figure1_array();
        assert_eq!(
            a.get(&[2, 2]).unwrap(),
            Some(vec![Value::Int(7), Value::Float(1.3)])
        );
        assert_eq!(a.get(&[1, 1]).unwrap(), None); // empty cell
        assert_eq!(a.get(&[4, 1]).unwrap(), None); // unstored chunk
        assert!(a.get(&[7, 1]).is_err()); // out of bounds
    }

    #[test]
    fn insert_routes_to_correct_chunk() {
        let schema = ArraySchema::parse("A<v:int>[i=1,6,3, j=1,6,3]").unwrap();
        let mut a = Array::new(schema);
        a.insert(&[4, 2], &[Value::Int(9)]).unwrap();
        // (4,2) → chunk grid (1,0) → linear id 1*2+0 = 2
        assert!(a.chunk(2).is_some());
        assert_eq!(a.chunk_count(), 1);
    }

    #[test]
    fn insert_chunk_merges_and_unsorts() {
        let a = figure1_array();
        let schema = a.schema.clone();
        let mut b = Array::new(schema.clone());
        for (id, chunk) in a.clone().into_chunks() {
            let _ = id;
            b.insert_chunk(chunk).unwrap();
        }
        assert_eq!(b.cell_count(), a.cell_count());
        // Merging a second copy into the same positions unsorts chunks and
        // creates coordinate collisions that validate() must catch.
        for (_, chunk) in a.into_chunks() {
            b.insert_chunk(chunk).unwrap();
        }
        assert!(!b.all_sorted());
        assert!(matches!(
            b.validate(),
            Err(ArrayError::CellCollision { .. })
        ));
    }

    #[test]
    fn to_batch_collects_all_cells() {
        let a = figure1_array();
        let batch = a.to_batch();
        assert_eq!(batch.len(), a.cell_count());
        batch.check_consistent().unwrap();
    }

    #[test]
    fn chunk_histogram_reports_occupancy() {
        let a = figure1_array();
        let hist = a.chunk_histogram();
        assert_eq!(hist.get(&0), Some(&7));
        assert_eq!(hist.get(&3), Some(&3));
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn from_batch_matches_per_cell_inserts() {
        let a = figure1_array();
        let batch = a.to_batch();
        let bulk = Array::from_batch(a.schema.clone(), &batch).unwrap();
        assert_eq!(bulk.cell_count(), a.cell_count());
        assert_eq!(bulk.chunk_count(), a.chunk_count());
        let mut x: Vec<_> = bulk.iter_cells().collect();
        let mut y: Vec<_> = a.iter_cells().collect();
        x.sort();
        y.sort();
        assert_eq!(x, y);
        bulk.validate().unwrap();
    }

    #[test]
    fn from_batch_rejects_bad_coords() {
        let schema = ArraySchema::parse("A<v:int>[i=1,10,5]").unwrap();
        let mut batch = crate::batch::CellBatch::new(1, &[crate::value::DataType::Int64]);
        batch.push(&[99], &[Value::Int(1)]).unwrap();
        assert!(Array::from_batch(schema.clone(), &batch).is_err());
        let empty = crate::batch::CellBatch::new(2, &[crate::value::DataType::Int64]);
        assert!(Array::from_batch(schema, &empty).is_err()); // arity
    }

    #[test]
    fn get_on_unsorted_chunk_falls_back_to_scan() {
        let schema = ArraySchema::parse("A<v:int>[i=1,10,10]").unwrap();
        let mut a = Array::new(schema);
        a.insert(&[5], &[Value::Int(50)]).unwrap();
        a.insert(&[2], &[Value::Int(20)]).unwrap(); // unsorted now
        assert!(!a.all_sorted());
        assert_eq!(a.get(&[2]).unwrap(), Some(vec![Value::Int(20)]));
        assert_eq!(a.get(&[5]).unwrap(), Some(vec![Value::Int(50)]));
        assert_eq!(a.get(&[3]).unwrap(), None);
    }
}
