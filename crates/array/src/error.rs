//! Error types for the array storage engine.

use std::fmt;

/// Errors produced by array-engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A schema failed validation (duplicate names, empty dimension, ...).
    InvalidSchema(String),
    /// A coordinate fell outside the dimension space of the target schema.
    CoordOutOfBounds {
        /// The offending dimension name.
        dimension: String,
        /// The coordinate value along that dimension.
        value: i64,
        /// Inclusive dimension range.
        range: (i64, i64),
    },
    /// A named dimension was not found in the schema.
    NoSuchDimension(String),
    /// A named attribute was not found in the schema.
    NoSuchAttribute(String),
    /// A value had the wrong type for the column it was written to.
    TypeMismatch {
        /// What the schema expects.
        expected: String,
        /// What the caller supplied.
        actual: String,
    },
    /// A cell write had the wrong number of coordinates or attribute values.
    ArityMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Supplied number of elements.
        actual: usize,
    },
    /// An operator received inputs whose schemas are incompatible.
    SchemaMismatch(String),
    /// A schema literal failed to parse.
    Parse(String),
    /// An expression could not be evaluated.
    Eval(String),
    /// Two occupied cells landed on the same coordinates during a
    /// redimension whose policy forbids collisions.
    CellCollision {
        /// Human-readable rendering of the colliding coordinate.
        coord: String,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            ArrayError::CoordOutOfBounds {
                dimension,
                value,
                range,
            } => write!(
                f,
                "coordinate {value} out of bounds for dimension `{dimension}` (range {}..={})",
                range.0, range.1
            ),
            ArrayError::NoSuchDimension(name) => write!(f, "no such dimension: `{name}`"),
            ArrayError::NoSuchAttribute(name) => write!(f, "no such attribute: `{name}`"),
            ArrayError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            ArrayError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} elements, got {actual}"
                )
            }
            ArrayError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            ArrayError::Parse(msg) => write!(f, "parse error: {msg}"),
            ArrayError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            ArrayError::CellCollision { coord } => {
                write!(f, "cell collision at coordinate {coord}")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ArrayError>;
