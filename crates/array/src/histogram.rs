//! Value-distribution histograms for schema inference.
//!
//! When a join predicate turns an attribute into a dimension of the join
//! schema, the optimizer "infers the dimension shape by referencing
//! statistics in the database engine about the source data … translating a
//! histogram of the source data's value distribution into a set of ranges
//! and chunking intervals" (paper §4). This module provides that
//! histogram and the range/chunk-interval inference.

use crate::batch::CellBatch;
use crate::error::{ArrayError, Result};
use crate::value::Value;

/// An equi-width histogram over the (numeric) values of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Total number of observed values.
    pub count: u64,
    /// Per-bucket counts over `[min, max]` split evenly.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `nbuckets` buckets from an iterator of values.
    pub fn build<I>(values: I, nbuckets: usize) -> Result<Self>
    where
        I: IntoIterator<Item = Value>,
    {
        let nums: Vec<f64> = values
            .into_iter()
            .map(|v| {
                v.as_float().ok_or_else(|| {
                    ArrayError::Eval(format!("histogram over non-numeric value {v}"))
                })
            })
            .collect::<Result<_>>()?;
        if nums.is_empty() {
            return Err(ArrayError::Eval("histogram over empty input".into()));
        }
        let nbuckets = nbuckets.max(1);
        let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = vec![0u64; nbuckets];
        let width = (max - min) / nbuckets as f64;
        for &v in &nums {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(nbuckets - 1)
            };
            buckets[idx] += 1;
        }
        Ok(Histogram {
            min,
            max,
            count: nums.len() as u64,
            buckets,
        })
    }

    /// Build from one attribute column of a batch.
    pub fn of_column(batch: &CellBatch, attr: usize, nbuckets: usize) -> Result<Self> {
        Histogram::build((0..batch.len()).map(|i| batch.value(i, attr)), nbuckets)
    }

    /// Infer a `(start, end, chunk_interval)` dimension shape such that an
    /// *average-density* chunk holds about `target_cells_per_chunk` cells.
    ///
    /// The range is the observed `[min, max]` of the values (rounded
    /// outward to integers); the chunk interval divides the extent so that
    /// `count / num_chunks ≈ target_cells_per_chunk` under uniform density.
    pub fn infer_dimension(&self, target_cells_per_chunk: u64) -> (i64, i64, u64) {
        let start = self.min.floor() as i64;
        let end = self.max.ceil() as i64;
        let extent = (end - start).max(0) as u64 + 1;
        let target = target_cells_per_chunk.max(1);
        let num_chunks = (self.count.div_ceil(target)).max(1);
        let interval = extent.div_ceil(num_chunks).max(1);
        (start, end, interval)
    }

    /// The Zipf-style skew of the bucket counts: fraction of values that
    /// fall in the heaviest `frac` of buckets. Used in tests and stats
    /// reporting (e.g. AIS's "85% of data in 5% of the chunks").
    pub fn concentration(&self, frac: f64) -> f64 {
        let mut sorted = self.buckets.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
        let top: u64 = sorted[..k].iter().sum();
        top as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_is_flat() {
        let h = Histogram::build((0..1000).map(Value::Int), 10).unwrap();
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 999.0);
        for &b in &h.buckets {
            assert_eq!(b, 100);
        }
    }

    #[test]
    fn skewed_histogram_concentrates() {
        // 90% of values in one spot.
        let values = (0..900)
            .map(|_| Value::Int(5))
            .chain((0..100).map(|i| Value::Int(i * 10)));
        let h = Histogram::build(values, 10).unwrap();
        assert!(h.concentration(0.1) >= 0.9);
    }

    #[test]
    fn constant_column_single_bucket() {
        let h = Histogram::build((0..10).map(|_| Value::Int(7)), 4).unwrap();
        assert_eq!(h.min, 7.0);
        assert_eq!(h.max, 7.0);
        assert_eq!(h.buckets[0], 10);
    }

    #[test]
    fn empty_and_non_numeric_inputs_error() {
        assert!(Histogram::build(std::iter::empty::<Value>(), 4).is_err());
        assert!(Histogram::build([Value::Str("x".into())], 4).is_err());
    }

    #[test]
    fn infer_dimension_targets_chunk_occupancy() {
        let h = Histogram::build((1..=10_000).map(Value::Int), 16).unwrap();
        let (start, end, interval) = h.infer_dimension(1000);
        assert_eq!(start, 1);
        assert_eq!(end, 10_000);
        // 10000 cells / 1000 per chunk = 10 chunks over extent 10000.
        assert_eq!(interval, 1000);
        // All cells fit in the inferred space.
        let extent = (end - start + 1) as u64;
        assert!(extent.div_ceil(interval) >= 10);
    }

    #[test]
    fn infer_dimension_handles_tiny_inputs() {
        let h = Histogram::build([Value::Int(5)], 4).unwrap();
        let (start, end, interval) = h.infer_dimension(1_000_000);
        assert_eq!((start, end), (5, 5));
        assert!(interval >= 1);
    }
}
