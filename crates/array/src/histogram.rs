//! Value-distribution histograms for schema inference.
//!
//! When a join predicate turns an attribute into a dimension of the join
//! schema, the optimizer "infers the dimension shape by referencing
//! statistics in the database engine about the source data … translating a
//! histogram of the source data's value distribution into a set of ranges
//! and chunking intervals" (paper §4). This module provides that
//! histogram and the range/chunk-interval inference.

use crate::batch::CellBatch;
use crate::error::{ArrayError, Result};
use crate::value::Value;

/// Register count of the embedded distinct sketch. 64 registers give a
/// ~13% standard error (1.04/√m), enough to separate "join key is nearly
/// unique" from "join key repeats heavily" — which is all the optimizer's
/// cardinality model needs.
pub const DISTINCT_REGISTERS: usize = 64;

/// An equi-width histogram over the (numeric) values of one column,
/// carrying an O(1)-mergeable distinct-count sketch alongside the bucket
/// counts (first step toward the Atreides-style degree sketches of
/// ROADMAP item 2a).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Total number of observed values.
    pub count: u64,
    /// Per-bucket counts over `[min, max]` split evenly.
    pub buckets: Vec<u64>,
    /// HyperLogLog registers: `registers[i]` is the maximum observed
    /// leading-zero rank among hashes routed to register `i`. Merging two
    /// sketches is an elementwise `max` — constant work, independent of
    /// how many values either side observed.
    pub distinct_sketch: [u8; DISTINCT_REGISTERS],
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for sketching.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Histogram {
    /// Build a histogram with `nbuckets` buckets from an iterator of values.
    pub fn build<I>(values: I, nbuckets: usize) -> Result<Self>
    where
        I: IntoIterator<Item = Value>,
    {
        let nums: Vec<f64> = values
            .into_iter()
            .map(|v| {
                v.as_float().ok_or_else(|| {
                    ArrayError::Eval(format!("histogram over non-numeric value {v}"))
                })
            })
            .collect::<Result<_>>()?;
        if nums.is_empty() {
            return Err(ArrayError::Eval("histogram over empty input".into()));
        }
        let nbuckets = nbuckets.max(1);
        let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = vec![0u64; nbuckets];
        let mut distinct_sketch = [0u8; DISTINCT_REGISTERS];
        let width = (max - min) / nbuckets as f64;
        for &v in &nums {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(nbuckets - 1)
            };
            buckets[idx] += 1;
            // Normalize so Int(42) and Float(42.0) sketch identically,
            // matching Value equality semantics.
            let canonical = if v == v.trunc() && v.abs() < 1e15 {
                (v as i64 as u64) ^ 0xa5a5_a5a5_0000_0000
            } else {
                v.to_bits()
            };
            let h = mix64(canonical);
            let reg = (h >> (64 - 6)) as usize; // top log2(64) bits pick the register
            let rank = ((h << 6) | 1).leading_zeros() as u8 + 1;
            distinct_sketch[reg] = distinct_sketch[reg].max(rank);
        }
        Ok(Histogram {
            min,
            max,
            count: nums.len() as u64,
            buckets,
            distinct_sketch,
        })
    }

    /// Build from one attribute column of a batch.
    pub fn of_column(batch: &CellBatch, attr: usize, nbuckets: usize) -> Result<Self> {
        Histogram::build((0..batch.len()).map(|i| batch.value(i, attr)), nbuckets)
    }

    /// Infer a `(start, end, chunk_interval)` dimension shape such that an
    /// *average-density* chunk holds about `target_cells_per_chunk` cells.
    ///
    /// The range is the observed `[min, max]` of the values (rounded
    /// outward to integers); the chunk interval divides the extent so that
    /// `count / num_chunks ≈ target_cells_per_chunk` under uniform density.
    pub fn infer_dimension(&self, target_cells_per_chunk: u64) -> (i64, i64, u64) {
        let start = self.min.floor() as i64;
        let end = self.max.ceil() as i64;
        let extent = (end - start).max(0) as u64 + 1;
        let target = target_cells_per_chunk.max(1);
        let num_chunks = (self.count.div_ceil(target)).max(1);
        let interval = extent.div_ceil(num_chunks).max(1);
        (start, end, interval)
    }

    /// Estimate the number of distinct values observed, from the embedded
    /// HyperLogLog sketch (Flajolet et al. 2007): the harmonic mean of
    /// per-register `2^-rank` terms, with the standard linear-counting
    /// correction for small cardinalities. Never returns less than 1.0
    /// for a non-empty histogram, and never more than `count`.
    pub fn distinct(&self) -> f64 {
        let m = DISTINCT_REGISTERS as f64;
        let raw_sum: f64 = self
            .distinct_sketch
            .iter()
            .map(|&r| 2f64.powi(-(r as i32)))
            .sum();
        // Bias constant alpha_m for m = 64.
        let alpha = 0.709;
        let mut estimate = alpha * m * m / raw_sum;
        let zeros = self.distinct_sketch.iter().filter(|&&r| r == 0).count();
        if estimate <= 2.5 * m && zeros > 0 {
            estimate = m * (m / zeros as f64).ln();
        }
        estimate.max(1.0)
    }

    /// Merge another histogram's distinct sketch into this one: an
    /// elementwise register `max`, O(registers) regardless of how many
    /// values either sketch absorbed. After merging, [`Self::distinct`]
    /// estimates the distinct count of the *union* of both inputs. Only
    /// the sketch is merged — bucket counts, `min`/`max`, and `count`
    /// keep describing this histogram's own column.
    pub fn merge_distinct(&mut self, other: &Histogram) {
        for (a, &b) in self.distinct_sketch.iter_mut().zip(&other.distinct_sketch) {
            *a = (*a).max(b);
        }
    }

    /// The Zipf-style skew of the bucket counts: fraction of values that
    /// fall in the heaviest `frac` of buckets. Used in tests and stats
    /// reporting (e.g. AIS's "85% of data in 5% of the chunks").
    pub fn concentration(&self, frac: f64) -> f64 {
        let mut sorted = self.buckets.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
        let top: u64 = sorted[..k].iter().sum();
        top as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_is_flat() {
        let h = Histogram::build((0..1000).map(Value::Int), 10).unwrap();
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 999.0);
        for &b in &h.buckets {
            assert_eq!(b, 100);
        }
    }

    #[test]
    fn skewed_histogram_concentrates() {
        // 90% of values in one spot.
        let values = (0..900)
            .map(|_| Value::Int(5))
            .chain((0..100).map(|i| Value::Int(i * 10)));
        let h = Histogram::build(values, 10).unwrap();
        assert!(h.concentration(0.1) >= 0.9);
    }

    #[test]
    fn constant_column_single_bucket() {
        let h = Histogram::build((0..10).map(|_| Value::Int(7)), 4).unwrap();
        assert_eq!(h.min, 7.0);
        assert_eq!(h.max, 7.0);
        assert_eq!(h.buckets[0], 10);
    }

    #[test]
    fn empty_and_non_numeric_inputs_error() {
        assert!(Histogram::build(std::iter::empty::<Value>(), 4).is_err());
        assert!(Histogram::build([Value::Str("x".into())], 4).is_err());
    }

    #[test]
    fn infer_dimension_targets_chunk_occupancy() {
        let h = Histogram::build((1..=10_000).map(Value::Int), 16).unwrap();
        let (start, end, interval) = h.infer_dimension(1000);
        assert_eq!(start, 1);
        assert_eq!(end, 10_000);
        // 10000 cells / 1000 per chunk = 10 chunks over extent 10000.
        assert_eq!(interval, 1000);
        // All cells fit in the inferred space.
        let extent = (end - start + 1) as u64;
        assert!(extent.div_ceil(interval) >= 10);
    }

    #[test]
    fn distinct_estimate_tracks_true_cardinality() {
        // 10_000 values over 1_000 distinct keys: estimate within the
        // sketch's ~13% standard error (allow 3 sigma ≈ 40%).
        let h = Histogram::build((0..10_000).map(|i| Value::Int(i % 1_000)), 16).unwrap();
        let est = h.distinct();
        assert!(
            (est - 1_000.0).abs() / 1_000.0 < 0.4,
            "estimate {est} too far from 1000"
        );
    }

    #[test]
    fn distinct_of_constant_column_is_one() {
        let h = Histogram::build((0..5_000).map(|_| Value::Int(7)), 8).unwrap();
        let est = h.distinct();
        assert!((1.0..2.0).contains(&est), "estimate {est} should be ~1");
    }

    #[test]
    fn distinct_sketch_int_float_agree() {
        let a = Histogram::build((0..100).map(Value::Int), 4).unwrap();
        let b = Histogram::build((0..100).map(|i| Value::Float(i as f64)), 4).unwrap();
        assert_eq!(a.distinct_sketch, b.distinct_sketch);
    }

    #[test]
    fn merge_distinct_estimates_union() {
        let mut a = Histogram::build((0..500).map(Value::Int), 4).unwrap();
        let b = Histogram::build((500..1_000).map(Value::Int), 4).unwrap();
        let separate = a.distinct();
        a.merge_distinct(&b);
        let merged = a.distinct();
        assert!(merged > separate, "union estimate must grow: {merged}");
        assert!(
            (merged - 1_000.0).abs() / 1_000.0 < 0.4,
            "union estimate {merged} too far from 1000"
        );
        // Merging is idempotent: absorbing the same sketch again is a no-op.
        let before = a.distinct_sketch;
        a.merge_distinct(&b);
        assert_eq!(a.distinct_sketch, before);
    }

    #[test]
    fn infer_dimension_handles_tiny_inputs() {
        let h = Histogram::build([Value::Int(5)], 4).unwrap();
        let (start, end, interval) = h.infer_dimension(1_000_000);
        assert_eq!((start, end), (5, 5));
        assert!(interval >= 1);
    }
}
