//! Array schemas: dimensions, attributes, and chunking (paper §2.1).
//!
//! Every array adheres to a logical schema of named, ordered dimensions and
//! typed attributes. Each dimension covers a contiguous integer range and
//! carries a *chunk interval* — the granularity at which the engine tiles
//! the dimension. Schemas can be written in the paper's literal syntax,
//! e.g. `A<v1:int, v2:float>[i=1,6,3, j=1,6,3]`.

use std::fmt;

use crate::error::{ArrayError, Result};
use crate::value::DataType;

/// One named dimension of an array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimensionDef {
    /// Dimension name (e.g. `i`).
    pub name: String,
    /// Inclusive lower bound of the coordinate range.
    pub start: i64,
    /// Inclusive upper bound of the coordinate range.
    pub end: i64,
    /// Number of logical cells per chunk along this dimension.
    pub chunk_interval: u64,
}

impl DimensionDef {
    /// Create a dimension, validating its bounds.
    pub fn new(name: impl Into<String>, start: i64, end: i64, chunk_interval: u64) -> Result<Self> {
        let name = name.into();
        if end < start {
            return Err(ArrayError::InvalidSchema(format!(
                "dimension `{name}` has end {end} < start {start}"
            )));
        }
        if chunk_interval == 0 {
            return Err(ArrayError::InvalidSchema(format!(
                "dimension `{name}` has zero chunk interval"
            )));
        }
        Ok(DimensionDef {
            name,
            start,
            end,
            chunk_interval,
        })
    }

    /// Number of potential coordinate values along this dimension.
    pub fn extent(&self) -> u64 {
        (self.end - self.start) as u64 + 1
    }

    /// Number of logical chunks along this dimension.
    pub fn chunk_count(&self) -> u64 {
        self.extent().div_ceil(self.chunk_interval)
    }

    /// Whether `coord` lies within this dimension's range.
    pub fn contains(&self, coord: i64) -> bool {
        coord >= self.start && coord <= self.end
    }

    /// Index of the chunk that holds `coord` along this dimension.
    pub fn chunk_index(&self, coord: i64) -> Result<u64> {
        if !self.contains(coord) {
            return Err(ArrayError::CoordOutOfBounds {
                dimension: self.name.clone(),
                value: coord,
                range: (self.start, self.end),
            });
        }
        Ok((coord - self.start) as u64 / self.chunk_interval)
    }

    /// Lowest coordinate covered by chunk `index` along this dimension.
    pub fn chunk_start(&self, index: u64) -> i64 {
        self.start + (index * self.chunk_interval) as i64
    }

    /// Highest coordinate covered by chunk `index` (clamped to the range).
    pub fn chunk_end(&self, index: u64) -> i64 {
        (self.chunk_start(index) + self.chunk_interval as i64 - 1).min(self.end)
    }
}

impl fmt::Display for DimensionDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={},{},{}",
            self.name, self.start, self.end, self.chunk_interval
        )
    }
}

/// One named, typed attribute of an array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttributeDef {
    /// Attribute name (e.g. `v1`).
    pub name: String,
    /// Scalar type of the attribute's values.
    pub dtype: DataType,
}

impl AttributeDef {
    /// Create an attribute definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        AttributeDef {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for AttributeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.dtype)
    }
}

/// The logical schema of an array: `name<attrs>[dims]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySchema {
    /// Array name.
    pub name: String,
    /// Ordered dimensions (outermost first; cells sort C-style on these).
    pub dims: Vec<DimensionDef>,
    /// Attributes stored in each occupied cell.
    pub attrs: Vec<AttributeDef>,
}

impl ArraySchema {
    /// Build and validate a schema.
    pub fn new(
        name: impl Into<String>,
        dims: Vec<DimensionDef>,
        attrs: Vec<AttributeDef>,
    ) -> Result<Self> {
        let schema = ArraySchema {
            name: name.into(),
            dims,
            attrs,
        };
        schema.validate()?;
        Ok(schema)
    }

    /// Check structural invariants: at least one dimension, unique names,
    /// no name shared between a dimension and an attribute.
    pub fn validate(&self) -> Result<()> {
        if self.dims.is_empty() {
            return Err(ArrayError::InvalidSchema(format!(
                "array `{}` must have at least one dimension",
                self.name
            )));
        }
        let mut names: Vec<&str> = Vec::with_capacity(self.dims.len() + self.attrs.len());
        for d in &self.dims {
            names.push(&d.name);
        }
        for a in &self.attrs {
            names.push(&a.name);
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(ArrayError::InvalidSchema(format!(
                    "duplicate dimension/attribute name `{}` in array `{}`",
                    pair[0], self.name
                )));
            }
        }
        Ok(())
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Number of attributes.
    pub fn nattrs(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the dimension named `name`.
    pub fn dim_index(&self, name: &str) -> Result<usize> {
        self.dims
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| ArrayError::NoSuchDimension(name.to_string()))
    }

    /// Index of the attribute named `name`.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ArrayError::NoSuchAttribute(name.to_string()))
    }

    /// Whether `name` refers to a dimension of this schema.
    pub fn has_dim(&self, name: &str) -> bool {
        self.dims.iter().any(|d| d.name == name)
    }

    /// Whether `name` refers to an attribute of this schema.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name == name)
    }

    /// Per-dimension chunk counts — the shape of the chunk grid.
    pub fn chunk_grid(&self) -> Vec<u64> {
        self.dims.iter().map(|d| d.chunk_count()).collect()
    }

    /// Total number of logical chunks (product of the grid shape).
    pub fn total_chunks(&self) -> u64 {
        self.dims.iter().map(|d| d.chunk_count()).product()
    }

    /// Total number of logical cells (product of the extents).
    pub fn logical_cells(&self) -> u64 {
        self.dims.iter().map(|d| d.extent()).product()
    }

    /// Map a cell coordinate to its per-dimension chunk indices.
    pub fn chunk_pos_of(&self, coord: &[i64]) -> Result<Vec<u64>> {
        if coord.len() != self.dims.len() {
            return Err(ArrayError::ArityMismatch {
                expected: self.dims.len(),
                actual: coord.len(),
            });
        }
        self.dims
            .iter()
            .zip(coord)
            .map(|(d, &c)| d.chunk_index(c))
            .collect()
    }

    /// Linearize per-dimension chunk indices to a single chunk id
    /// (row-major over the chunk grid, matching C-style cell order).
    pub fn linear_chunk_id(&self, pos: &[u64]) -> u64 {
        let mut id = 0u64;
        for (d, &p) in self.dims.iter().zip(pos) {
            id = id * d.chunk_count() + p;
        }
        id
    }

    /// Inverse of [`linear_chunk_id`](Self::linear_chunk_id).
    pub fn chunk_pos_from_id(&self, mut id: u64) -> Vec<u64> {
        let mut pos = vec![0u64; self.dims.len()];
        for (i, d) in self.dims.iter().enumerate().rev() {
            let count = d.chunk_count();
            pos[i] = id % count;
            id /= count;
        }
        pos
    }

    /// Approximate per-cell stored size in bytes: one coordinate word per
    /// dimension plus the attribute payloads. Used for transfer costing.
    pub fn cell_bytes(&self) -> usize {
        8 * self.dims.len()
            + self
                .attrs
                .iter()
                .map(|a| a.dtype.byte_width())
                .sum::<usize>()
    }

    /// Whether two schemas have identical dimension spaces (names may
    /// differ; ranges and chunk intervals must match). This is the paper's
    /// precondition for the array merge join (§2.3.1).
    pub fn same_shape(&self, other: &ArraySchema) -> bool {
        self.dims.len() == other.dims.len()
            && self.dims.iter().zip(&other.dims).all(|(a, b)| {
                a.start == b.start && a.end == b.end && a.chunk_interval == b.chunk_interval
            })
    }

    /// Parse a schema literal in the paper's syntax:
    /// `A<v1:int, v2:float>[i=1,6,3, j=1,6,3]`.
    ///
    /// Each dimension is written `name=start,end,chunk_interval`. The
    /// attribute list may be empty (`A<>[...]` or `A[...]`).
    pub fn parse(text: &str) -> Result<Self> {
        parse::schema(text)
    }
}

impl fmt::Display for ArraySchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ">[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

mod parse {
    //! Minimal recursive-descent parser for schema literals.

    use super::*;

    struct Cursor<'a> {
        text: &'a str,
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn new(text: &'a str) -> Self {
            Cursor { text, pos: 0 }
        }

        fn skip_ws(&mut self) {
            while self.text[self.pos..]
                .chars()
                .next()
                .is_some_and(|c| c.is_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<char> {
            self.skip_ws();
            self.text[self.pos..].chars().next()
        }

        fn eat(&mut self, expected: char) -> Result<()> {
            match self.peek() {
                Some(c) if c == expected => {
                    self.pos += c.len_utf8();
                    Ok(())
                }
                other => Err(ArrayError::Parse(format!(
                    "expected `{expected}` at byte {} of schema literal, found {:?}",
                    self.pos, other
                ))),
            }
        }

        fn try_eat(&mut self, expected: char) -> bool {
            if self.peek() == Some(expected) {
                self.pos += expected.len_utf8();
                true
            } else {
                false
            }
        }

        fn ident(&mut self) -> Result<String> {
            self.skip_ws();
            let rest = &self.text[self.pos..];
            let len = rest
                .char_indices()
                .take_while(|(i, c)| c.is_alphanumeric() || *c == '_' || (*i > 0 && *c == '.'))
                .map(|(i, c)| i + c.len_utf8())
                .last()
                .unwrap_or(0);
            if len == 0 {
                return Err(ArrayError::Parse(format!(
                    "expected identifier at byte {} of schema literal",
                    self.pos
                )));
            }
            let id = rest[..len].to_string();
            self.pos += len;
            Ok(id)
        }

        fn int(&mut self) -> Result<i64> {
            self.skip_ws();
            let rest = &self.text[self.pos..];
            let mut len = 0;
            for (i, c) in rest.char_indices() {
                if c == '-' && i == 0 || c.is_ascii_digit() {
                    len = i + c.len_utf8();
                } else {
                    break;
                }
            }
            if len == 0 {
                return Err(ArrayError::Parse(format!(
                    "expected integer at byte {} of schema literal",
                    self.pos
                )));
            }
            let n: i64 = rest[..len]
                .parse()
                .map_err(|e| ArrayError::Parse(format!("bad integer: {e}")))?;
            self.pos += len;
            Ok(n)
        }

        fn at_end(&mut self) -> bool {
            self.skip_ws();
            self.pos >= self.text.len()
        }
    }

    pub(super) fn schema(text: &str) -> Result<ArraySchema> {
        let mut c = Cursor::new(text);
        let name = c.ident()?;
        let mut attrs = Vec::new();
        if c.try_eat('<') && !c.try_eat('>') {
            loop {
                let attr_name = c.ident()?;
                c.eat(':')?;
                let dtype = DataType::parse(&c.ident()?)?;
                attrs.push(AttributeDef::new(attr_name, dtype));
                if !c.try_eat(',') {
                    break;
                }
            }
            c.eat('>')?;
        }
        c.eat('[')?;
        let mut dims = Vec::new();
        if !c.try_eat(']') {
            loop {
                let dim_name = c.ident()?;
                c.eat('=')?;
                let start = c.int()?;
                c.eat(',')?;
                let end = c.int()?;
                c.eat(',')?;
                let interval = c.int()?;
                if interval <= 0 {
                    return Err(ArrayError::Parse(format!(
                        "dimension `{dim_name}` has non-positive chunk interval {interval}"
                    )));
                }
                dims.push(DimensionDef::new(dim_name, start, end, interval as u64)?);
                if !c.try_eat(',') {
                    break;
                }
            }
            c.eat(']')?;
        }
        // Optional trailing semicolon, as in the paper's listings.
        c.try_eat(';');
        if !c.at_end() {
            return Err(ArrayError::Parse(format!(
                "trailing input at byte {} of schema literal",
                c.pos
            )));
        }
        ArraySchema::new(name, dims, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_schema() -> ArraySchema {
        // The paper's Figure 1 example.
        ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap()
    }

    #[test]
    fn parse_figure1_example() {
        let s = figure1_schema();
        assert_eq!(s.name, "A");
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.nattrs(), 2);
        assert_eq!(s.dims[0].name, "i");
        assert_eq!(s.dims[0].extent(), 6);
        assert_eq!(s.dims[0].chunk_count(), 2);
        assert_eq!(s.attrs[1].dtype, DataType::Float64);
        assert_eq!(s.total_chunks(), 4);
        assert_eq!(s.logical_cells(), 36);
    }

    #[test]
    fn parse_trailing_semicolon_and_empty_attrs() {
        let s = ArraySchema::parse("B<w:int>[j=1,128,4];").unwrap();
        assert_eq!(s.name, "B");
        let t = ArraySchema::parse("T<>[k=0,9,5]").unwrap();
        assert_eq!(t.nattrs(), 0);
        assert_eq!(t.dims[0].chunk_count(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ArraySchema::parse("A<v:blob>[i=1,6,3]").is_err());
        assert!(ArraySchema::parse("A<v:int>[i=1,6]").is_err());
        assert!(ArraySchema::parse("A<v:int>[i=1,6,0]").is_err());
        assert!(ArraySchema::parse("A<v:int>[i=1,6,3] extra").is_err());
        assert!(ArraySchema::parse("[i=1,6,3]").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(ArraySchema::parse("A<i:int>[i=1,6,3]").is_err());
        assert!(ArraySchema::parse("A<v:int, v:float>[i=1,6,3]").is_err());
    }

    #[test]
    fn dimension_chunk_math() {
        let d = DimensionDef::new("i", 1, 10, 4).unwrap();
        assert_eq!(d.extent(), 10);
        assert_eq!(d.chunk_count(), 3);
        assert_eq!(d.chunk_index(1).unwrap(), 0);
        assert_eq!(d.chunk_index(4).unwrap(), 0);
        assert_eq!(d.chunk_index(5).unwrap(), 1);
        assert_eq!(d.chunk_index(10).unwrap(), 2);
        assert!(d.chunk_index(0).is_err());
        assert!(d.chunk_index(11).is_err());
        assert_eq!(d.chunk_start(1), 5);
        assert_eq!(d.chunk_end(2), 10); // clamped: full interval would be 12
    }

    #[test]
    fn negative_dimension_ranges() {
        let d = DimensionDef::new("lat", -90, 90, 4).unwrap();
        assert_eq!(d.extent(), 181);
        assert_eq!(d.chunk_index(-90).unwrap(), 0);
        assert_eq!(d.chunk_index(-87).unwrap(), 0);
        assert_eq!(d.chunk_index(-86).unwrap(), 1);
        assert_eq!(d.chunk_start(0), -90);
    }

    #[test]
    fn chunk_id_roundtrip() {
        let s = figure1_schema();
        for id in 0..s.total_chunks() {
            let pos = s.chunk_pos_from_id(id);
            assert_eq!(s.linear_chunk_id(&pos), id);
        }
    }

    #[test]
    fn chunk_pos_of_cells() {
        let s = figure1_schema();
        assert_eq!(s.chunk_pos_of(&[1, 1]).unwrap(), vec![0, 0]);
        assert_eq!(s.chunk_pos_of(&[3, 4]).unwrap(), vec![0, 1]);
        assert_eq!(s.chunk_pos_of(&[6, 6]).unwrap(), vec![1, 1]);
        assert!(s.chunk_pos_of(&[7, 1]).is_err());
        assert!(s.chunk_pos_of(&[1]).is_err());
    }

    #[test]
    fn same_shape_ignores_names() {
        let a = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap();
        let c = ArraySchema::parse("C<w:int>[j=1,100,20]").unwrap();
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn display_roundtrip() {
        let s = figure1_schema();
        let rendered = s.to_string();
        let reparsed = ArraySchema::parse(&rendered).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn cell_bytes_accounts_for_dims_and_attrs() {
        let s = figure1_schema();
        // 2 dims * 8 + int(8) + float(8)
        assert_eq!(s.cell_bytes(), 32);
    }
}
