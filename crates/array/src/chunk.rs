//! Multidimensional chunks: the unit of storage, I/O and network transfer.
//!
//! A chunk covers a fixed hyper-rectangle of the array's dimension space
//! (paper §2.1). Only occupied cells are stored, so a chunk's physical size
//! is proportional to its occupancy — the source of *storage skew*.

use crate::batch::CellBatch;
use crate::error::{ArrayError, Result};
use crate::keys::{KernelConfig, SortKernel};
use crate::schema::ArraySchema;
use crate::value::Value;

/// One stored chunk of an array.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Per-dimension chunk indices locating this chunk in the chunk grid.
    pub pos: Vec<u64>,
    /// The occupied cells, stored columnar (vertically partitioned).
    pub cells: CellBatch,
    /// Whether `cells` is in C-style coordinate order. Freshly `rechunk`ed
    /// chunks are unsorted; `redim`/`sort` produce ordered chunks.
    pub sorted: bool,
}

impl Chunk {
    /// An empty chunk at grid position `pos` for the given schema.
    pub fn new(schema: &ArraySchema, pos: Vec<u64>) -> Self {
        let attr_types: Vec<_> = schema.attrs.iter().map(|a| a.dtype).collect();
        Chunk {
            pos,
            cells: CellBatch::new(schema.ndims(), &attr_types),
            sorted: true, // an empty chunk is trivially sorted
        }
    }

    /// Number of occupied cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether the chunk stores no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Approximate stored size in bytes.
    pub fn byte_size(&self) -> usize {
        self.cells.byte_size()
    }

    /// Append a cell. Marks the chunk unsorted unless the new cell extends
    /// the existing C-order.
    pub fn push(&mut self, coord: &[i64], values: &[Value]) -> Result<()> {
        let n = self.cells.len();
        self.cells.push(coord, values)?;
        if self.sorted && n > 0 && self.cells.cmp_coords(n - 1, n) == std::cmp::Ordering::Greater {
            self.sorted = false;
        }
        Ok(())
    }

    /// Sort the chunk's cells into C-order if they are not already.
    ///
    /// Delegates to [`CellBatch::sort_c_order`], i.e. the dispatched
    /// sort over normalized coordinate keys ([`crate::keys`]) with a
    /// comparator fallback for > 4 dimensions.
    pub fn sort(&mut self) {
        self.sort_with(&KernelConfig::default());
    }

    /// Sort with explicit dispatch thresholds; returns the kernel that
    /// ran (`Identity` when the chunk was already in order).
    pub fn sort_with(&mut self, cfg: &KernelConfig) -> SortKernel {
        if self.sorted {
            return SortKernel::Identity;
        }
        let kernel = self.cells.sort_c_order_with(cfg);
        self.sorted = true;
        kernel
    }

    /// Verify that every stored cell lies inside this chunk's region of
    /// `schema`'s dimension space, and that the sorted flag is truthful.
    pub fn validate(&self, schema: &ArraySchema) -> Result<()> {
        if self.pos.len() != schema.ndims() {
            return Err(ArrayError::SchemaMismatch(format!(
                "chunk position has {} dims, schema has {}",
                self.pos.len(),
                schema.ndims()
            )));
        }
        self.cells.check_consistent()?;
        for i in 0..self.cells.len() {
            for (d, dim) in schema.dims.iter().enumerate() {
                let c = self.cells.coords[d][i];
                let lo = dim.chunk_start(self.pos[d]);
                let hi = dim.chunk_end(self.pos[d]);
                if c < lo || c > hi {
                    return Err(ArrayError::CoordOutOfBounds {
                        dimension: dim.name.clone(),
                        value: c,
                        range: (lo, hi),
                    });
                }
            }
        }
        if self.sorted && !self.cells.is_sorted_c_order() {
            return Err(ArrayError::SchemaMismatch(
                "chunk flagged sorted but cells are out of order".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> ArraySchema {
        ArraySchema::parse("A<v:int>[i=1,6,3, j=1,6,3]").unwrap()
    }

    #[test]
    fn new_chunk_is_empty_and_sorted() {
        let c = Chunk::new(&schema(), vec![0, 0]);
        assert!(c.is_empty());
        assert!(c.sorted);
        c.validate(&schema()).unwrap();
    }

    #[test]
    fn push_in_order_keeps_sorted_flag() {
        let mut c = Chunk::new(&schema(), vec![0, 0]);
        c.push(&[1, 1], &[Value::Int(1)]).unwrap();
        c.push(&[1, 2], &[Value::Int(2)]).unwrap();
        c.push(&[2, 1], &[Value::Int(3)]).unwrap();
        assert!(c.sorted);
    }

    #[test]
    fn push_out_of_order_clears_sorted_flag() {
        let mut c = Chunk::new(&schema(), vec![0, 0]);
        c.push(&[2, 1], &[Value::Int(1)]).unwrap();
        c.push(&[1, 1], &[Value::Int(2)]).unwrap();
        assert!(!c.sorted);
        c.sort();
        assert!(c.sorted);
        assert_eq!(c.cells.coord(0), vec![1, 1]);
    }

    #[test]
    fn validate_rejects_out_of_region_cells() {
        let mut c = Chunk::new(&schema(), vec![0, 0]);
        // (5,5) belongs to chunk (1,1), not (0,0).
        c.push(&[5, 5], &[Value::Int(1)]).unwrap();
        assert!(c.validate(&schema()).is_err());
    }

    #[test]
    fn validate_rejects_lying_sorted_flag() {
        let mut c = Chunk::new(&schema(), vec![0, 0]);
        c.push(&[2, 1], &[Value::Int(1)]).unwrap();
        c.push(&[1, 1], &[Value::Int(2)]).unwrap();
        c.sorted = true; // lie
        assert!(c.validate(&schema()).is_err());
    }

    #[test]
    fn byte_size_proportional_to_occupancy() {
        let mut a = Chunk::new(&schema(), vec![0, 0]);
        let mut b = Chunk::new(&schema(), vec![0, 0]);
        a.push(&[1, 1], &[Value::Int(1)]).unwrap();
        for j in 1..=3 {
            b.push(&[1, j], &[Value::Int(1)]).unwrap();
        }
        assert_eq!(b.byte_size(), 3 * a.byte_size());
    }
}
