//! Test-loop configuration, failure type, and the deterministic RNG.

use std::fmt;

/// How many cases each `proptest!` function runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator seeded from the test's name, so every run of a
/// given property replays the same case sequence (no regressions file).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path gives a well-spread 64-bit seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value below `bound` (> 0), bias-free via widening
    /// multiply with rejection (Lemire 2019).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}
