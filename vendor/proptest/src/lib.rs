//! Minimal, dependency-free shim of the `proptest` property-testing API.
//!
//! See `vendor/proptest/README.md` for what is (and is not) covered.
//! The public module layout mirrors the real crate so the workspace's
//! test sources compile unchanged against either implementation.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Defines property tests.
///
/// Matches the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0i64..100, v in proptest::collection::vec(any::<i32>(), 0..20)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
///
/// Each function body runs `config.cases` times against freshly
/// generated inputs. `prop_assert*` failures abort the whole test with
/// the offending case's message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __strat = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(
                <$crate::test_runner::ProptestConfig as ::std::default::Default>::default()
            )]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (instead of panicking outright) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` specialized to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{}` == `{}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(__left == __right, $($fmt)*);
    }};
}

/// `prop_assert!` specialized to inequality, printing both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{}` != `{}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(__left != __right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in -5i64..5,
            y in 0u32..=10,
            v in crate::collection::vec((0usize..4, any::<i16>()), 0..32),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y <= 10);
            prop_assert!(v.len() < 32);
            for (slot, _) in &v {
                prop_assert!(*slot < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn combinators_compose(
            pair in (1usize..=4).prop_flat_map(|n| {
                crate::collection::vec(0i32..100, n).prop_map(move |v| (n, v))
            }),
            odd in (0i32..1000).prop_filter("odd", |x| x % 2 == 1),
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert_ne!(odd % 2, 0);
        }
    }

    #[test]
    fn same_test_name_reproduces_identical_cases() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        for _ in 0..64 {
            assert_eq!(
                Strategy::generate(&(0u64..1000), &mut a),
                Strategy::generate(&(0u64..1000), &mut b)
            );
        }
    }
}
