//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// After this many consecutive `prop_filter` rejections the strategy
/// panics instead of looping forever.
const FILTER_MAX_TRIES: usize = 10_000;

/// Generates values of an associated type from a deterministic RNG.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// is just a generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling on rejection.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_TRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_MAX_TRIES} candidates in a row",
            self.reason
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
