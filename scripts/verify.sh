#!/usr/bin/env sh
# Tier-1 verification gate: offline release build, full test suite, and
# the thread-count determinism check for the parallel executor.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> determinism: identical results at threads = 1, 2, 8"
cargo test -q --test determinism

echo "==> fault matrix: seeded faults replay identically at threads = 1, 2, 8"
cargo test -q --test fault_determinism

echo "==> golden equivalence: pipeline vs legacy ops, threads = 1, 2, 8"
cargo test -q --features proptest --test golden_equivalence

echo "==> multiway equivalence: DP plan vs every left-deep order, threads = 1, 2, 8"
cargo test -q --features proptest --test multiway_equivalence

echo "==> distinct-count sketch: Zipf 0.5/1.0/1.5 error bounds + exact shard merge"
cargo test -q --test distinct_estimate

echo "==> join_kernels smoke run (snapshots BENCH_KERNELS.json)"
smoke_log="target/join_kernels_smoke.log"
JOIN_KERNELS_SMOKE=1 cargo bench -p sj-bench --bench join_kernels > "$smoke_log" 2>&1
grep '^{' "$smoke_log" > BENCH_KERNELS.json
echo "    $(grep -c '^{' BENCH_KERNELS.json) points -> BENCH_KERNELS.json"

echo "==> fault_makespan smoke run (snapshots BENCH_SHUFFLE.json)"
shuffle_log="target/fault_makespan_smoke.log"
FAULT_MAKESPAN_SMOKE=1 cargo bench -p sj-bench --bench fault_makespan > "$shuffle_log" 2>&1
grep '^{' "$shuffle_log" > BENCH_SHUFFLE.json
echo "    $(grep -c '^{' BENCH_SHUFFLE.json) points -> BENCH_SHUFFLE.json"

echo "==> straggler re-plan gate: >= 1.5x makespan cut at 10x severity (asserted inside fault_makespan)"
grep 'replan gate' "$shuffle_log"

echo "==> cancellation stress: fuse sweep drains scoped pools, zero leaked workers"
cancel_log="target/cancellation_stress.log"
cargo test -q --test lifecycle -- --nocapture > "$cancel_log" 2>&1
grep 'leaked workers: 0' "$cancel_log"

echo "==> telemetry smoke: fig8 join trace -> TRACE_SMOKE.json, >=95% phase coverage"
cargo run --release --quiet --example profile_query TRACE_SMOKE.json > target/telemetry_smoke.log
grep -c '^{' TRACE_SMOKE.json > /dev/null
tail -2 target/telemetry_smoke.log

echo "==> telemetry overhead gate: disabled path < 2% (asserted inside join_kernels)"
grep 'disabled-telemetry overhead' "$smoke_log"

echo "==> kernel dispatch gate: dispatched <= 1.1x best single kernel at 20k and 1M (asserted inside join_kernels)"
grep 'dispatch gate' "$smoke_log"

echo "==> multi_join smoke run (snapshots BENCH_MULTIJOIN.json)"
mj_log="target/multi_join_smoke.log"
MULTI_JOIN_SMOKE=1 cargo bench -p sj-bench --bench multi_join > "$mj_log" 2>&1
grep '^{' "$mj_log" > BENCH_MULTIJOIN.json
echo "    $(grep -c '^{' BENCH_MULTIJOIN.json) points -> BENCH_MULTIJOIN.json"

echo "==> join ordering gate: DP <= 1.1x best left-deep order, worst >= 1.5x DP at 1M (asserted inside multi_join)"
grep 'multi_join gate' "$mj_log"

echo "==> lints: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> formatting: cargo fmt --check"
cargo fmt --check

echo "verify.sh: all checks passed"
