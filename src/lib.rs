//! # skewjoin — skew-aware join optimization for array databases
//!
//! A from-scratch Rust reproduction of *Skew-Aware Join Optimization for
//! Array Databases* (Duggan, Papaemmanouil, Battle, Stonebraker —
//! SIGMOD 2015): a SciDB-like chunked array engine, a shared-nothing
//! cluster simulator, and the paper's two-phase **shuffle join**
//! optimizer — a logical planner that picks the join algorithm and join
//! units via dynamic programming, and a set of skew-aware physical
//! planners (Minimum Bandwidth, Tabu search, ILP) that assign join units
//! to cluster nodes under an analytical cost model.
//!
//! ## Quick start
//!
//! ```
//! use skewjoin::{ArrayDb, Array, ArraySchema, Value};
//! use skewjoin::cluster::NetworkModel;
//!
//! let mut db = ArrayDb::new(4, NetworkModel::gigabit());
//! let a = Array::from_cells(
//!     ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap(),
//!     (1..=100).map(|i| (vec![i], vec![Value::Int(i)])),
//! ).unwrap();
//! let b = Array::from_cells(
//!     ArraySchema::parse("B<w:int>[i=1,100,10]").unwrap(),
//!     (1..=100).map(|i| (vec![i], vec![Value::Int(2 * i)])),
//! ).unwrap();
//! db.load_default(a).unwrap();
//! db.load_default(b).unwrap();
//! let result = db.query("SELECT * FROM A, B WHERE A.i = B.i").unwrap();
//! assert_eq!(result.array.cell_count(), 100);
//! ```

#![warn(missing_docs)]

mod engine;

pub use engine::{ArrayDb, Error, QueryResult, Result};

// Re-export the substrate crates under stable names.
pub use sj_array as array;
pub use sj_cluster as cluster;
pub use sj_core as join;
pub use sj_ilp as ilp;
pub use sj_lang as lang;
pub use sj_workload as workload;

// The most common types at the crate root for ergonomic use.
pub use sj_array::{
    Array, ArraySchema, AttributeDef, CellBatch, DataType, DimensionDef, Expr, Value,
};
pub use sj_cluster::{Cluster, NetworkModel, Placement, ReplanPolicy};
pub use sj_core::exec::{
    execute_join, ExecConfig, ExecConfigBuilder, JoinMetrics, JoinQuery, JoinRun, LifecycleConfig,
    OnDeadline,
};
pub use sj_core::predicate::JoinPredicate;
pub use sj_core::telemetry;
pub use sj_core::{
    CancelHandle, ClockSource, Interrupt, JoinAlgo, MetricsView, PlannerKind, QueryContext,
    Telemetry, TelemetryConfig, VirtualClock,
};
