//! High-level engine API: a distributed array database you can load
//! arrays into and query with AQL or AFL.
//!
//! This is the glue between the substrates: the [`sj_array`] storage
//! engine, the [`sj_cluster`] shared-nothing simulator, the [`sj_lang`]
//! query front-end, and the [`sj_core`] shuffle-join optimizer. Both
//! query surfaces execute through one path: the front-end lowers the
//! statement into the shared plan IR ([`sj_core::PlanNode`]), the
//! rewriter pushes row-local operators below the coordinator boundary,
//! and the streaming batch pipeline ([`sj_core::run_plan`]) produces the
//! materialized result.

use std::fmt;

use sj_array::{Array, ArrayError};
use sj_cluster::{Cluster, ClusterError, NetworkModel, Placement};
use sj_core::exec::ExecConfig;
use sj_core::telemetry::{SpanGuard, Telemetry, Tracer};
use sj_core::{rewrite_with, run_plan_traced, JoinError, PlanNode};
use sj_lang::{
    bind_select_traced, lower_afl_traced, lower_select_traced, parse_afl_traced, parse_aql_traced,
    LangError,
};

/// Top-level error type for the engine.
#[derive(Debug)]
pub enum Error {
    /// Storage-layer failure.
    Array(ArrayError),
    /// Cluster-layer failure.
    Cluster(ClusterError),
    /// Join planning/execution failure.
    Join(JoinError),
    /// Query-language failure (lex, parse, bind, or lower), with the
    /// failing phase and source span.
    Language(LangError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Array(e) => write!(f, "array error: {e}"),
            Error::Cluster(e) => write!(f, "cluster error: {e}"),
            Error::Join(e) => write!(f, "join error: {e}"),
            Error::Language(e) => write!(f, "language error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Array(e) => Some(e),
            Error::Cluster(e) => Some(e),
            Error::Join(e) => Some(e),
            Error::Language(e) => Some(e),
        }
    }
}

impl From<ArrayError> for Error {
    fn from(e: ArrayError) -> Self {
        Error::Array(e)
    }
}
impl From<ClusterError> for Error {
    fn from(e: ClusterError) -> Self {
        Error::Cluster(e)
    }
}
impl From<JoinError> for Error {
    fn from(e: JoinError) -> Self {
        Error::Join(e)
    }
}
impl From<LangError> for Error {
    fn from(e: LangError) -> Self {
        Error::Language(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The result of a query: the output array plus the query's telemetry —
/// a span tree covering parse → bind → lower → rewrite → pipeline (with
/// any shuffle-join phases nested inside) and the engine counters.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The materialized result.
    pub array: Array,
    /// Everything measured while the query ran. The legacy reports are
    /// views over this tree ([`sj_core::MetricsView`]).
    pub telemetry: Telemetry,
}

/// A distributed array database over a simulated shared-nothing cluster.
pub struct ArrayDb {
    cluster: Cluster,
    exec_config: ExecConfig,
}

impl ArrayDb {
    /// A database on a `nodes`-node cluster with the given interconnect.
    pub fn new(nodes: usize, network: NetworkModel) -> Self {
        ArrayDb {
            cluster: Cluster::new(nodes, network),
            exec_config: ExecConfig::default(),
        }
    }

    /// A single-node database (gigabit-class network model).
    pub fn single_node() -> Self {
        ArrayDb::new(1, NetworkModel::gigabit())
    }

    /// Replace the shuffle-join execution configuration (planner choice,
    /// cost-model parameters, forced algorithm, ...).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec_config = config;
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_config
    }

    /// The cancellation handle queries on this database run under: clone
    /// it, hand the clone to another thread (or a signal handler), and
    /// call [`sj_core::CancelHandle::cancel`] to make the in-flight query
    /// unwind with `JoinError::Cancelled` at its next lifecycle
    /// checkpoint. Call [`sj_core::CancelHandle::reset`] before the next
    /// query to reuse the handle.
    pub fn cancel_handle(&self) -> sj_core::CancelHandle {
        self.exec_config.lifecycle.cancel.clone()
    }

    /// Access the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Load an array with the given chunk placement.
    pub fn load(&mut self, array: Array, placement: &Placement) -> Result<()> {
        self.cluster.load_array(array, placement)?;
        Ok(())
    }

    /// Load with the engine default placement (round-robin, like SciDB).
    pub fn load_default(&mut self, array: Array) -> Result<()> {
        self.load(array, &Placement::RoundRobin)
    }

    /// Drop an array.
    pub fn drop_array(&mut self, name: &str) -> Result<()> {
        self.cluster.drop_array(name)?;
        Ok(())
    }

    /// Materialize a stored array at the coordinator.
    pub fn gather(&self, name: &str) -> Result<Array> {
        Ok(self.cluster.gather(name)?)
    }

    /// Run an AQL query (`SELECT … [INTO …] FROM … [WHERE …]`).
    pub fn query(&self, aql: &str) -> Result<QueryResult> {
        self.traced_query(|root| {
            let stmt = parse_aql_traced(aql, root)?;
            let catalog = self.cluster.catalog();
            let bound = bind_select_traced(&stmt, |name| catalog.schema(name).ok().cloned(), root)?;
            Ok(lower_select_traced(&bound, root))
        })
    }

    /// Evaluate an AFL operator expression
    /// (`filter(A, v > 5)`, `redim(B, <…>[…])`, `merge(A, B)`, …) and
    /// return the materialized result.
    pub fn afl(&self, text: &str) -> Result<QueryResult> {
        self.traced_query(|root| {
            let expr = parse_afl_traced(text, root)?;
            let catalog = self.cluster.catalog();
            Ok(lower_afl_traced(
                &expr,
                &|name| catalog.schema(name).ok().cloned(),
                root,
            )?)
        })
    }

    /// The single execution path behind both query surfaces: open the
    /// query's root span, run the front end (`front` records its
    /// parse/bind/lower children), rewrite, and execute through the
    /// streaming pipeline — every phase recording into one span tree.
    fn traced_query<F>(&self, front: F) -> Result<QueryResult>
    where
        F: FnOnce(&SpanGuard) -> Result<PlanNode>,
    {
        let tracer = Tracer::new(&self.exec_config.telemetry);
        let root = tracer.root("query");
        let plan = front(&root)?;
        let plan = {
            let _span = root.child("rewrite");
            // Schema-aware rewrite: with the catalog available, the
            // rewriter can also push projections into join inputs.
            let catalog = self.cluster.catalog();
            rewrite_with(plan, &|name| catalog.schema(name).ok().cloned())
        };
        let array = run_plan_traced(&self.cluster, &plan, &self.exec_config, &root)?;
        drop(root);
        let telemetry = tracer.finish();
        telemetry
            .export(&self.exec_config.telemetry)
            .map_err(|e| JoinError::Storage(format!("telemetry export failed: {e}")))
            .map_err(Error::Join)?;
        Ok(QueryResult { array, telemetry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::{ArraySchema, Value};
    use sj_core::MetricsView;

    fn db() -> ArrayDb {
        let mut db = ArrayDb::new(2, NetworkModel::gigabit());
        let a = Array::from_cells(
            ArraySchema::parse("A<v:int>[i=1,20,5]").unwrap(),
            (1..=20).map(|i| (vec![i], vec![Value::Int(i * 10)])),
        )
        .unwrap();
        let b = Array::from_cells(
            ArraySchema::parse("B<w:int>[i=1,20,5]").unwrap(),
            (1..=20).map(|i| (vec![i], vec![Value::Int(i)])),
        )
        .unwrap();
        db.load_default(a).unwrap();
        db.load_default(b).unwrap();
        db
    }

    #[test]
    fn aql_filter_query() {
        let db = db();
        let r = db.query("SELECT * FROM A WHERE v > 150").unwrap();
        assert_eq!(r.array.cell_count(), 5);
        assert!(r.telemetry.join_metrics().is_none());
        // The front-end phases record under the query root span.
        let root = r.telemetry.root().unwrap();
        assert_eq!(root.name, "query");
        for phase in ["parse", "bind", "lower", "rewrite", "pipeline"] {
            assert!(root.child(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn aql_filter_pushdown_shrinks_gathered_bytes() {
        // The rewriter pushes the WHERE below gather, so only surviving
        // cells cross the coordinator boundary.
        let db = db();
        let all = db.query("SELECT * FROM A").unwrap();
        let some = db.query("SELECT * FROM A WHERE v > 150").unwrap();
        let all_stats = all.telemetry.pipeline_stats();
        let some_stats = some.telemetry.pipeline_stats();
        assert!(some_stats.gathered_bytes < all_stats.gathered_bytes);
        assert_eq!(some_stats.gathered_cells, 5);
        assert_eq!(all_stats.gathered_cells, 20);
    }

    #[test]
    fn aql_join_query_with_metrics() {
        let db = db();
        let r = db.query("SELECT * FROM A, B WHERE A.i = B.i").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        let m = r.telemetry.join_metrics().unwrap();
        assert_eq!(m.matches, 20);
        // The join's span nests under the pipeline span.
        let pipeline = r.telemetry.find("pipeline").unwrap();
        assert!(pipeline.child("join").is_some());
    }

    #[test]
    fn aql_join_with_projection_expression() {
        let db = db();
        let r = db
            .query("SELECT A.v - B.w AS delta FROM A, B WHERE A.i = B.i")
            .unwrap();
        assert_eq!(r.array.schema.attrs[0].name, "delta");
        let cell = r.array.get(&[3]).unwrap().unwrap();
        assert_eq!(cell[0], Value::Int(27)); // 30 - 3
    }

    /// The `db()` fixture plus a third array so multi-way joins have a
    /// chain to walk: C shares dimension `i` with A and B.
    fn db3() -> ArrayDb {
        let mut db = db();
        let c = Array::from_cells(
            ArraySchema::parse("C<u:int>[i=1,20,5]").unwrap(),
            (1..=20).map(|i| (vec![i], vec![Value::Int(i * 100)])),
        )
        .unwrap();
        db.load_default(c).unwrap();
        db
    }

    #[test]
    fn aql_three_way_join_end_to_end() {
        let db = db3();
        let r = db
            .query("SELECT * FROM A, B, C WHERE A.i = B.i AND B.i = C.i")
            .unwrap();
        assert_eq!(r.array.cell_count(), 20);
        // All three attributes survive, keyed by the shared dimension.
        let cell = r.array.get(&[3]).unwrap().unwrap();
        assert_eq!(cell, vec![Value::Int(30), Value::Int(3), Value::Int(300)]);
        // The optimizer span records the DP run beside the pipeline span.
        let root = r.telemetry.root().unwrap();
        let opt = root.child("optimizer").expect("missing optimizer span");
        assert_eq!(opt.field("relations").and_then(|f| f.as_u64()), Some(3));
        assert!(opt.field("chosen").is_some());
        assert!(opt.field("est_rows").is_some());
        // Per-subset estimates nest beneath it: 3 singletons + joins.
        assert!(opt.children.iter().filter(|c| c.name == "subset").count() >= 4);
    }

    #[test]
    fn aql_three_way_join_with_filter_and_projection() {
        let db = db3();
        let r = db
            .query(
                "SELECT A.v + C.u AS s FROM A, B, C \
                 WHERE A.i = B.i AND B.i = C.i AND B.w > 15",
            )
            .unwrap();
        assert_eq!(r.array.cell_count(), 5);
        assert_eq!(r.array.schema.attrs[0].name, "s");
        let cell = r.array.get(&[17]).unwrap().unwrap();
        assert_eq!(cell[0], Value::Int(170 + 1700));
    }

    #[test]
    fn aql_disconnected_join_graph_is_rejected() {
        let db = db3();
        let input = "SELECT * FROM A, B, C WHERE A.v = B.w";
        let err = db.query(input).unwrap_err();
        let Error::Language(lang) = &err else {
            panic!("expected a language error, got {err:?}");
        };
        assert!(lang.to_string().contains("disconnected join graph"));
        let span = lang.span.expect("disconnected errors carry spans");
        assert_eq!(&input[span.start..span.end], "C");
    }

    #[test]
    fn afl_filter_and_nesting() {
        let db = db();
        let r = db.afl("filter(A, v > 100)").unwrap();
        assert_eq!(r.array.cell_count(), 10);
        let r = db.afl("sort(filter(A, v > 100))").unwrap();
        assert_eq!(r.array.cell_count(), 10);
    }

    #[test]
    fn afl_merge_join() {
        let db = db();
        let r = db.afl("merge(A, B)").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        assert!(r.telemetry.join_metrics().is_some());
    }

    #[test]
    fn afl_redim_with_schema_literal() {
        let db = db();
        let r = db.afl("redim(A, <i:int>[v=10,200,50])").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        assert_eq!(r.array.schema.dims[0].name, "v");
    }

    #[test]
    fn afl_between_and_aggregate() {
        let db = db();
        let r = db.afl("between(A, 3, 7)").unwrap();
        assert_eq!(r.array.cell_count(), 5);
        let r = db.afl("aggregate(A, count)").unwrap();
        assert_eq!(r.array.get(&[0]).unwrap().unwrap()[0], Value::Int(20));
        let r = db.afl("aggregate(A, max, v)").unwrap();
        assert_eq!(r.array.get(&[0]).unwrap().unwrap()[0], Value::Int(200));
        // Composition: aggregate over a window.
        let r = db.afl("aggregate(between(A, 1, 2), sum, v)").unwrap();
        assert_eq!(r.array.get(&[0]).unwrap().unwrap()[0], Value::Float(30.0));
        assert!(db.afl("between(A, 1)").is_err());
        assert!(db.afl("aggregate(A, median, v)").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(db.query("SELECT FROM").is_err());
        assert!(db.query("SELECT * FROM Missing").is_err());
        assert!(db.afl("unknownOp(A)").is_err());
        assert!(db.afl("filter(A)").is_err());
    }

    #[test]
    fn language_errors_are_typed_with_spans() {
        let db = db();
        let input = "SELECT * FROM Missing";
        let err = db.query(input).unwrap_err();
        let Error::Language(lang) = &err else {
            panic!("expected a language error, got {err:?}");
        };
        let span = lang.span.expect("bind errors carry spans");
        assert_eq!(&input[span.start..span.end], "Missing");
        // The error chain is reachable through std::error::Error.
        assert!(err.to_string().contains("unknown array"));
    }

    #[test]
    fn load_and_drop_lifecycle() {
        let mut db = db();
        assert!(db.gather("A").is_ok());
        db.drop_array("A").unwrap();
        assert!(db.gather("A").is_err());
        assert!(db.drop_array("A").is_err());
    }
}
