//! High-level engine API: a distributed array database you can load
//! arrays into and query with AQL or AFL.
//!
//! This is the glue between the substrates: the [`sj_array`] storage
//! engine, the [`sj_cluster`] shared-nothing simulator, the [`sj_lang`]
//! query front-end, and the [`sj_core`] shuffle-join optimizer.

use std::fmt;

use sj_array::ops::{self, RedimPolicy};
use sj_array::{Array, ArrayError, ArraySchema, Expr};
use sj_cluster::{Cluster, ClusterError, NetworkModel, Placement};
use sj_core::exec::{execute_shuffle_join, ExecConfig, JoinMetrics, JoinQuery};
use sj_core::predicate::JoinPredicate;
use sj_core::JoinError;
use sj_lang::{bind_select, parse_afl, parse_aql, rewrite_for_output, AflArg, AflExpr, BoundSelect};

/// Top-level error type for the engine.
#[derive(Debug)]
pub enum Error {
    /// Storage-layer failure.
    Array(ArrayError),
    /// Cluster-layer failure.
    Cluster(ClusterError),
    /// Join planning/execution failure.
    Join(JoinError),
    /// Query-language failure (parse or bind).
    Language(String),
    /// Unsupported operation.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Array(e) => write!(f, "array error: {e}"),
            Error::Cluster(e) => write!(f, "cluster error: {e}"),
            Error::Join(e) => write!(f, "join error: {e}"),
            Error::Language(msg) => write!(f, "language error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ArrayError> for Error {
    fn from(e: ArrayError) -> Self {
        Error::Array(e)
    }
}
impl From<ClusterError> for Error {
    fn from(e: ClusterError) -> Self {
        Error::Cluster(e)
    }
}
impl From<JoinError> for Error {
    fn from(e: JoinError) -> Self {
        Error::Join(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The result of a query: the output array plus join metrics when the
/// query ran through the shuffle-join optimizer.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The materialized result.
    pub array: Array,
    /// Shuffle-join execution metrics (joins only).
    pub join_metrics: Option<JoinMetrics>,
}

/// A distributed array database over a simulated shared-nothing cluster.
pub struct ArrayDb {
    cluster: Cluster,
    exec_config: ExecConfig,
}

impl ArrayDb {
    /// A database on a `nodes`-node cluster with the given interconnect.
    pub fn new(nodes: usize, network: NetworkModel) -> Self {
        ArrayDb {
            cluster: Cluster::new(nodes, network),
            exec_config: ExecConfig::default(),
        }
    }

    /// A single-node database (gigabit-class network model).
    pub fn single_node() -> Self {
        ArrayDb::new(1, NetworkModel::gigabit())
    }

    /// Replace the shuffle-join execution configuration (planner choice,
    /// cost-model parameters, forced algorithm, ...).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec_config = config;
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_config
    }

    /// Access the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Load an array with the given chunk placement.
    pub fn load(&mut self, array: Array, placement: &Placement) -> Result<()> {
        self.cluster.load_array(array, placement)?;
        Ok(())
    }

    /// Load with the engine default placement (round-robin, like SciDB).
    pub fn load_default(&mut self, array: Array) -> Result<()> {
        self.load(array, &Placement::RoundRobin)
    }

    /// Drop an array.
    pub fn drop_array(&mut self, name: &str) -> Result<()> {
        self.cluster.drop_array(name)?;
        Ok(())
    }

    /// Materialize a stored array at the coordinator.
    pub fn gather(&self, name: &str) -> Result<Array> {
        Ok(self.cluster.gather(name)?)
    }

    /// Run an AQL query (`SELECT … [INTO …] FROM … [WHERE …]`).
    pub fn query(&self, aql: &str) -> Result<QueryResult> {
        let stmt = parse_aql(aql).map_err(|e| Error::Language(e.to_string()))?;
        let catalog = self.cluster.catalog();
        let bound = bind_select(&stmt, |name| catalog.schema(name).ok().cloned())
            .map_err(|e| Error::Language(e.to_string()))?;
        match bound {
            BoundSelect::SingleArray {
                array,
                filter,
                projections,
                into_name,
            } => {
                let mut result = self.gather(&array)?;
                if let Some(pred) = &filter {
                    result = ops::filter(&result, pred)?;
                }
                if let Some(projections) = &projections {
                    result = ops::apply(&result, projections)?;
                }
                if let Some(name) = into_name {
                    result.schema.name = name;
                }
                Ok(QueryResult {
                    array: result,
                    join_metrics: None,
                })
            }
            BoundSelect::Join {
                left,
                right,
                pairs,
                output,
                projections,
            } => {
                let mut query = JoinQuery::new(left, right, JoinPredicate::new(pairs));
                if let Some(out) = output {
                    query = query.into_schema(out);
                }
                let (mut array, metrics) =
                    execute_shuffle_join(&self.cluster, &query, &self.exec_config)?;
                if let Some(projections) = &projections {
                    let rewritten: Vec<(String, Expr)> = projections
                        .iter()
                        .map(|(name, expr)| {
                            (name.clone(), rewrite_for_output(expr, &array.schema))
                        })
                        .collect();
                    array = ops::apply(&array, &rewritten)?;
                }
                Ok(QueryResult {
                    array,
                    join_metrics: Some(metrics),
                })
            }
        }
    }

    /// Evaluate an AFL operator expression
    /// (`filter(A, v > 5)`, `redim(B, <…>[…])`, `merge(A, B)`, …) and
    /// return the materialized result.
    pub fn afl(&self, text: &str) -> Result<QueryResult> {
        let expr = parse_afl(text).map_err(|e| Error::Language(e.to_string()))?;
        self.eval_afl(&expr)
    }

    fn eval_afl(&self, expr: &AflExpr) -> Result<QueryResult> {
        match expr {
            AflExpr::Array(name) => Ok(QueryResult {
                array: self.gather(name)?,
                join_metrics: None,
            }),
            AflExpr::Call { op, args } => self.eval_call(op, args),
        }
    }

    fn eval_call(&self, op: &str, args: &[AflArg]) -> Result<QueryResult> {
        let opl = op.to_ascii_lowercase();
        match opl.as_str() {
            "scan" => self.unary_array(args, |a| Ok(ops::scan(&a))),
            "sort" => self.unary_array(args, |a| Ok(ops::sort(&a))),
            "filter" => {
                let array = self.arg_array(args, 0)?;
                let pred = self.arg_expr(args, 1)?;
                Ok(QueryResult {
                    array: ops::filter(&array, &pred)?,
                    join_metrics: None,
                })
            }
            "redim" | "redimension" | "rechunk" => {
                let array = self.arg_array(args, 0)?;
                let schema = self.arg_schema(args, 1)?;
                let out = if opl == "rechunk" {
                    ops::rechunk(&array, &schema, RedimPolicy::Strict)?
                } else {
                    ops::redim(&array, &schema, RedimPolicy::Strict)?
                };
                Ok(QueryResult {
                    array: out,
                    join_metrics: None,
                })
            }
            "between" => {
                let array = self.arg_array(args, 0)?;
                let nd = array.schema.ndims();
                if args.len() != 1 + 2 * nd {
                    return Err(Error::Language(format!(
                        "between needs {nd} low + {nd} high coordinates"
                    )));
                }
                let coord = |idx: usize| -> Result<i64> {
                    match self.arg_expr(args, idx)? {
                        Expr::Literal(v) => {
                            v.to_coord().map_err(Error::Array)
                        }
                        Expr::Neg(inner) => match *inner {
                            Expr::Literal(v) => {
                                Ok(-v.to_coord().map_err(Error::Array)?)
                            }
                            _ => Err(Error::Language("between bounds must be integers".into())),
                        },
                        _ => Err(Error::Language("between bounds must be integers".into())),
                    }
                };
                let low: Vec<i64> = (1..=nd).map(coord).collect::<Result<_>>()?;
                let high: Vec<i64> = (nd + 1..=2 * nd).map(coord).collect::<Result<_>>()?;
                Ok(QueryResult {
                    array: ops::between(&array, &low, &high)?,
                    join_metrics: None,
                })
            }
            "aggregate" | "agg" => {
                // aggregate(A, sum, v): returns a 1-cell array holding the
                // scalar result.
                let array = self.arg_array(args, 0)?;
                let func_name = match args.get(1) {
                    Some(AflArg::Afl(AflExpr::Array(n))) => n.clone(),
                    Some(AflArg::Expr(Expr::Column(n))) => n.clone(),
                    other => {
                        return Err(Error::Language(format!(
                            "aggregate needs a function name, got {other:?}"
                        )))
                    }
                };
                let func = ops::AggFn::parse(&func_name).map_err(Error::Array)?;
                let attr = match args.get(2) {
                    Some(AflArg::Afl(AflExpr::Array(n))) => n.clone(),
                    Some(AflArg::Expr(Expr::Column(n))) => n.clone(),
                    None => array
                        .schema
                        .attrs
                        .first()
                        .map(|a| a.name.clone())
                        .unwrap_or_default(),
                    other => {
                        return Err(Error::Language(format!(
                            "aggregate needs an attribute name, got {other:?}"
                        )))
                    }
                };
                let value = ops::aggregate(&array, func, &attr)?;
                let dtype = value.data_type();
                let schema = ArraySchema::new(
                    "agg",
                    vec![sj_array::DimensionDef::new("r", 0, 0, 1).map_err(Error::Array)?],
                    vec![sj_array::AttributeDef::new(func_name, dtype)],
                )
                .map_err(Error::Array)?;
                let result = Array::from_cells(schema, vec![(vec![0], vec![value])])
                    .map_err(Error::Array)?;
                Ok(QueryResult {
                    array: result,
                    join_metrics: None,
                })
            }
            "project" => {
                let array = self.arg_array(args, 0)?;
                let mut names: Vec<String> = Vec::new();
                for a in &args[1..] {
                    match a {
                        AflArg::Expr(Expr::Column(c)) => names.push(c.clone()),
                        AflArg::Afl(AflExpr::Array(c)) => names.push(c.clone()),
                        other => {
                            return Err(Error::Unsupported(format!(
                                "project expects column names, got {other:?}"
                            )))
                        }
                    }
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                Ok(QueryResult {
                    array: ops::project(&array, &refs)?,
                    join_metrics: None,
                })
            }
            "merge" | "mergejoin" | "join" => {
                // A distributed D:D join on the arrays' shared dimensions.
                // Both operands must be stored arrays (the shuffle join
                // plans against cluster-resident data).
                let name_of = |arg: Option<&AflArg>| -> Result<String> {
                    match arg {
                        Some(AflArg::Afl(AflExpr::Array(n))) => Ok(n.clone()),
                        other => Err(Error::Unsupported(format!(
                            "merge expects stored array names, got {other:?}"
                        ))),
                    }
                };
                let left = name_of(args.first())?;
                let right = name_of(args.get(1))?;
                let catalog = self.cluster.catalog();
                let ls = catalog.schema(&left).map_err(Error::Cluster)?;
                let rs = catalog.schema(&right).map_err(Error::Cluster)?;
                if ls.ndims() != rs.ndims() {
                    return Err(Error::Unsupported(
                        "merge requires equal dimensionality".into(),
                    ));
                }
                let pairs: Vec<(String, String)> = ls
                    .dims
                    .iter()
                    .zip(&rs.dims)
                    .map(|(a, b)| (a.name.clone(), b.name.clone()))
                    .collect();
                let query = JoinQuery::new(left, right, JoinPredicate::new(pairs));
                let (array, metrics) =
                    execute_shuffle_join(&self.cluster, &query, &self.exec_config)?;
                Ok(QueryResult {
                    array,
                    join_metrics: Some(metrics),
                })
            }
            other => Err(Error::Unsupported(format!("AFL operator `{other}`"))),
        }
    }

    fn unary_array<F>(&self, args: &[AflArg], f: F) -> Result<QueryResult>
    where
        F: FnOnce(Array) -> Result<Array>,
    {
        let array = self.arg_array(args, 0)?;
        Ok(QueryResult {
            array: f(array)?,
            join_metrics: None,
        })
    }

    fn arg_array(&self, args: &[AflArg], idx: usize) -> Result<Array> {
        match args.get(idx) {
            Some(AflArg::Afl(inner)) => Ok(self.eval_afl(inner)?.array),
            Some(other) => Err(Error::Unsupported(format!(
                "argument {idx} must be an array expression, got {other:?}"
            ))),
            None => Err(Error::Language(format!("missing argument {idx}"))),
        }
    }

    fn arg_expr(&self, args: &[AflArg], idx: usize) -> Result<Expr> {
        match args.get(idx) {
            Some(AflArg::Expr(e)) => Ok(e.clone()),
            Some(AflArg::Afl(AflExpr::Array(name))) => Ok(Expr::col(name.clone())),
            Some(AflArg::Int(v)) => Ok(Expr::int(*v)),
            Some(other) => Err(Error::Unsupported(format!(
                "argument {idx} must be a scalar expression, got {other:?}"
            ))),
            None => Err(Error::Language(format!("missing argument {idx}"))),
        }
    }

    fn arg_schema(&self, args: &[AflArg], idx: usize) -> Result<ArraySchema> {
        match args.get(idx) {
            Some(AflArg::Schema(s)) => Ok(s.clone()),
            Some(AflArg::Afl(AflExpr::Array(name))) => {
                // A named array: reuse its schema (redim(B, A) form).
                Ok(self
                    .cluster
                    .catalog()
                    .schema(name)
                    .map_err(Error::Cluster)?
                    .clone())
            }
            Some(other) => Err(Error::Unsupported(format!(
                "argument {idx} must be a schema literal, got {other:?}"
            ))),
            None => Err(Error::Language(format!("missing argument {idx}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::Value;

    fn db() -> ArrayDb {
        let mut db = ArrayDb::new(2, NetworkModel::gigabit());
        let a = Array::from_cells(
            ArraySchema::parse("A<v:int>[i=1,20,5]").unwrap(),
            (1..=20).map(|i| (vec![i], vec![Value::Int(i * 10)])),
        )
        .unwrap();
        let b = Array::from_cells(
            ArraySchema::parse("B<w:int>[i=1,20,5]").unwrap(),
            (1..=20).map(|i| (vec![i], vec![Value::Int(i)])),
        )
        .unwrap();
        db.load_default(a).unwrap();
        db.load_default(b).unwrap();
        db
    }

    #[test]
    fn aql_filter_query() {
        let db = db();
        let r = db.query("SELECT * FROM A WHERE v > 150").unwrap();
        assert_eq!(r.array.cell_count(), 5);
        assert!(r.join_metrics.is_none());
    }

    #[test]
    fn aql_join_query_with_metrics() {
        let db = db();
        let r = db.query("SELECT * FROM A, B WHERE A.i = B.i").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        let m = r.join_metrics.unwrap();
        assert_eq!(m.matches, 20);
    }

    #[test]
    fn aql_join_with_projection_expression() {
        let db = db();
        let r = db
            .query("SELECT A.v - B.w AS delta FROM A, B WHERE A.i = B.i")
            .unwrap();
        assert_eq!(r.array.schema.attrs[0].name, "delta");
        let cell = r.array.get(&[3]).unwrap().unwrap();
        assert_eq!(cell[0], Value::Int(27)); // 30 - 3
    }

    #[test]
    fn afl_filter_and_nesting() {
        let db = db();
        let r = db.afl("filter(A, v > 100)").unwrap();
        assert_eq!(r.array.cell_count(), 10);
        let r = db.afl("sort(filter(A, v > 100))").unwrap();
        assert_eq!(r.array.cell_count(), 10);
    }

    #[test]
    fn afl_merge_join() {
        let db = db();
        let r = db.afl("merge(A, B)").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        assert!(r.join_metrics.is_some());
    }

    #[test]
    fn afl_redim_with_schema_literal() {
        let db = db();
        let r = db.afl("redim(A, <i:int>[v=10,200,50])").unwrap();
        assert_eq!(r.array.cell_count(), 20);
        assert_eq!(r.array.schema.dims[0].name, "v");
    }

    #[test]
    fn afl_between_and_aggregate() {
        let db = db();
        let r = db.afl("between(A, 3, 7)").unwrap();
        assert_eq!(r.array.cell_count(), 5);
        let r = db.afl("aggregate(A, count)").unwrap();
        assert_eq!(r.array.get(&[0]).unwrap().unwrap()[0], Value::Int(20));
        let r = db.afl("aggregate(A, max, v)").unwrap();
        assert_eq!(r.array.get(&[0]).unwrap().unwrap()[0], Value::Int(200));
        // Composition: aggregate over a window.
        let r = db.afl("aggregate(between(A, 1, 2), sum, v)").unwrap();
        assert_eq!(
            r.array.get(&[0]).unwrap().unwrap()[0],
            Value::Float(30.0)
        );
        assert!(db.afl("between(A, 1)").is_err());
        assert!(db.afl("aggregate(A, median, v)").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(db.query("SELECT FROM").is_err());
        assert!(db.query("SELECT * FROM Missing").is_err());
        assert!(db.afl("unknownOp(A)").is_err());
        assert!(db.afl("filter(A)").is_err());
    }

    #[test]
    fn load_and_drop_lifecycle() {
        let mut db = db();
        assert!(db.gather("A").is_ok());
        db.drop_array("A").unwrap();
        assert!(db.gather("A").is_err());
        assert!(db.drop_array("A").is_err());
    }
}
