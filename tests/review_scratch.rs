use sj_array::{ArraySchema, CellBatch, DataType, Histogram, Value};
use sj_core::algorithms::{hash_join, hash_join_rowwise, Emitter};
use sj_core::{infer_join_schema, ColumnStats, JoinPredicate, JoinSide};

fn mk(rows: &[(i64, f64)]) -> CellBatch {
    let mut c = CellBatch::new(0, &[DataType::Int64, DataType::Float64]);
    for &(i, v) in rows {
        c.push(&[], &[Value::Int(i), Value::Float(v)]).unwrap();
    }
    c
}

#[test]
fn signed_zero_hash_join_divergence() {
    let a = ArraySchema::parse("A<v:float>[i=1,100,10]").unwrap();
    let b = ArraySchema::parse("B<w:float>[j=1,100,10]").unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    stats.insert(
        JoinSide::Left,
        "v",
        Histogram::build((1..=10).map(Value::Int), 4).unwrap(),
    );
    let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
    let l = mk(&[(1, -0.0)]);
    let r = mk(&[(2, 0.0), (3, -0.0)]);
    let mut em_new = Emitter::new(&js);
    let mut em_old = Emitter::new(&js);
    let n_new = hash_join(&l, &[1], &r, &[1], &mut em_new).unwrap();
    let n_old = hash_join_rowwise(&l, &[1], &r, &[1], &mut em_old).unwrap();
    println!("columnar={n_new} rowwise={n_old}");
    assert_eq!(n_new, n_old, "columnar hash join diverges from rowwise on signed zeros");
}
