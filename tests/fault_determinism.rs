//! Thread-count determinism of the executor under injected faults.
//!
//! Companion to `determinism.rs`: the contract that `ExecConfig.threads`
//! changes wall-clock time only must survive fault injection. A seeded
//! `FaultPlan` (drops, corruption, a mid-shuffle node crash) is replayed
//! at 1, 2, and 8 worker threads; every run must produce the identical
//! `ShuffleReport` — including retry, reroute, and recovery counters —
//! and identical joined cells, because the fault simulation is driven by
//! the plan's own PRNG stream, never by host scheduling.

use sj_array::Array;
use sj_cluster::{Cluster, FaultPlan, NetworkModel, Placement, ReplanPolicy};
use sj_core::exec::{execute_join, ExecConfig, JoinMetrics, JoinQuery, OnDeadline};
use sj_core::{
    ClockSource, JoinAlgo, JoinError, JoinPredicate, MetricsView, PlannerKind, VirtualClock,
};
use sj_workload::{skewed_pair, SkewedArrayConfig};

/// The Figure-8-style skewed pair on 4 nodes, loaded with 2-way chained
/// replication so a node crash is recoverable.
fn replicated_cluster() -> Cluster {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster
        .load_array_replicated(a, &Placement::HashSalted(1), 2)
        .unwrap();
    cluster
        .load_array_replicated(b, &Placement::HashSalted(2), 2)
        .unwrap();
    cluster
}

fn query() -> JoinQuery {
    JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001)
}

fn config(threads: usize, faults: FaultPlan) -> ExecConfig {
    ExecConfig::builder()
        .planner(PlannerKind::Tabu)
        .forced_algo(JoinAlgo::Hash)
        .hash_buckets(64)
        .threads(threads)
        .faults(faults)
        .build()
        .unwrap()
}

fn run_join(cluster: &Cluster, query: &JoinQuery, config: &ExecConfig) -> (Array, JoinMetrics) {
    let run = execute_join(cluster, query, config).unwrap();
    let metrics = run.telemetry.join_metrics().unwrap();
    (run.array, metrics)
}

#[test]
fn faulty_join_is_identical_across_thread_counts() {
    let cluster = replicated_cluster();
    let query = query();

    // Time the crash off a clean run so it lands mid-shuffle.
    let (_, clean) = run_join(&cluster, &query, &config(1, FaultPlan::none()));
    let faults = FaultPlan::seeded(23)
        .with_drop_rate(0.05)
        .with_corrupt_rate(0.01)
        .with_crash(2, clean.shuffle.makespan / 2.0);

    let run = |threads: usize| run_join(&cluster, &query, &config(threads, faults.clone()));

    let (ref_out, ref_metrics) = run(1);
    assert!(ref_metrics.matches > 0, "fixture must produce matches");
    assert!(ref_metrics.degraded, "crash must degrade the run");
    assert_eq!(ref_metrics.shuffle.failed_nodes, vec![2]);
    assert!(
        ref_metrics.shuffle.retries > 0,
        "5% drops over this workload must force at least one retry"
    );
    assert!(ref_metrics.shuffle.recovery_bytes > 0);
    let ref_cells: Vec<_> = ref_out.iter_cells().collect();

    for threads in [2usize, 8] {
        let (out, metrics) = run(threads);
        assert_eq!(
            out.iter_cells().collect::<Vec<_>>(),
            ref_cells,
            "output cells differ between threads=1 and threads={threads}"
        );
        assert_eq!(metrics.matches, ref_metrics.matches);
        assert_eq!(
            metrics.shuffle, ref_metrics.shuffle,
            "fault counters differ at threads={threads}"
        );
        assert_eq!(metrics.degraded, ref_metrics.degraded);
        assert_eq!(metrics.plan_tier, ref_metrics.plan_tier);
    }
}

#[test]
fn same_seed_replays_identically_different_seed_diverges() {
    // The fault stream is a pure function of the seed: two runs with the
    // same plan agree counter-for-counter, and the counters respond to
    // the seed (otherwise the test would pass with faults ignored).
    let cluster = replicated_cluster();
    let query = query();
    let plan = |seed: u64| FaultPlan::seeded(seed).with_drop_rate(0.08);

    let run = |faults: FaultPlan| run_join(&cluster, &query, &config(2, faults)).1;

    let a = run(plan(5));
    let b = run(plan(5));
    assert_eq!(a.shuffle, b.shuffle);
    assert!(a.shuffle.retries > 0);

    let c = run(plan(6));
    assert_ne!(
        (a.shuffle.retries, a.shuffle.makespan),
        (c.shuffle.retries, c.shuffle.makespan),
        "different seeds should draw different drop patterns"
    );
}

#[test]
fn fault_free_plan_has_zero_fault_counters_at_any_thread_count() {
    // `FaultPlan::none()` must be indistinguishable from the default
    // config: zero retries/reroutes/recovery and not degraded.
    let cluster = replicated_cluster();
    let query = query();
    for threads in [1usize, 2, 8] {
        let (_, m) = run_join(&cluster, &query, &config(threads, FaultPlan::none()));
        assert_eq!(m.shuffle.retries, 0);
        assert_eq!(m.shuffle.reroutes, 0);
        assert_eq!(m.shuffle.recovery_bytes, 0);
        assert!(m.shuffle.failed_nodes.is_empty());
        assert!(!m.degraded);
    }
}

/// A 10x straggler plan plus a config that enables mid-shuffle
/// re-planning with the given policy and thread count.
fn straggler_config(threads: usize, policy: ReplanPolicy) -> ExecConfig {
    ExecConfig::builder()
        .planner(PlannerKind::Tabu)
        .forced_algo(JoinAlgo::Hash)
        .hash_buckets(64)
        .threads(threads)
        .faults(FaultPlan::seeded(11).with_straggler(1, 10.0))
        .replan(policy)
        .build()
        .unwrap()
}

#[test]
fn replanned_straggler_run_is_identical_across_thread_counts() {
    let cluster = replicated_cluster();
    let query = query();

    // Size the re-plan barrier off the clean makespan so several
    // barriers land inside the straggled shuffle.
    let (_, clean) = run_join(&cluster, &query, &config(1, FaultPlan::none()));
    let interval = clean.shuffle.makespan / 4.0;
    let policy = ReplanPolicy::enabled(2.0, interval, 2);

    let (_, slow) = run_join(
        &cluster,
        &query,
        &straggler_config(1, ReplanPolicy::disabled()),
    );
    let (ref_out, ref_m) = run_join(&cluster, &query, &straggler_config(1, policy.clone()));
    assert!(
        ref_m.shuffle.replans > 0,
        "a 10x straggler must trip the re-planner"
    );
    assert!(
        ref_m.shuffle.makespan < slow.shuffle.makespan,
        "re-planning must beat the straggled schedule: {} vs {}",
        ref_m.shuffle.makespan,
        slow.shuffle.makespan
    );
    assert_eq!(ref_m.matches, clean.matches, "results survive re-routing");
    let ref_cells: Vec<_> = ref_out.iter_cells().collect();

    for threads in [2usize, 8] {
        let (out, m) = run_join(&cluster, &query, &straggler_config(threads, policy.clone()));
        assert_eq!(
            out.iter_cells().collect::<Vec<_>>(),
            ref_cells,
            "output cells differ between threads=1 and threads={threads}"
        );
        assert_eq!(
            m.shuffle, ref_m.shuffle,
            "re-planned shuffle report differs at threads={threads}"
        );
    }
}

#[test]
fn virtual_deadline_under_straggler_is_deterministic_across_thread_counts() {
    let cluster = replicated_cluster();
    let query = query();

    // A deadline halfway into the straggled shuffle expires at a
    // deterministic virtual instant (the simulation clock is driven by
    // event completion times, never host scheduling), making it the
    // divergence point between the two policies: `Abort` trips an
    // in-shuffle checkpoint, while `FinishCurrentUnit` committed at the
    // start of alignment and runs the shuffle deadline-free.
    let (_, slow) = run_join(
        &cluster,
        &query,
        &straggler_config(1, ReplanPolicy::disabled()),
    );
    let deadline = slow.shuffle.makespan * 0.5;

    let cfg = |threads: usize, policy: OnDeadline| {
        ExecConfig::builder()
            .planner(PlannerKind::Tabu)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(64)
            .threads(threads)
            .faults(FaultPlan::seeded(11).with_straggler(1, 10.0))
            .deadline(deadline)
            .on_deadline(policy)
            .clock(ClockSource::Virtual(VirtualClock::new()))
            .build()
            .unwrap()
    };

    // Abort: the expired deadline unwinds as a typed error, at every
    // thread count.
    for threads in [1usize, 2, 8] {
        let err = execute_join(&cluster, &query, &cfg(threads, OnDeadline::Abort)).unwrap_err();
        assert!(
            matches!(err, JoinError::DeadlineExceeded),
            "threads={threads}: expected DeadlineExceeded, got {err:?}"
        );
    }

    // FinishCurrentUnit: the run committed when alignment began, so the
    // mid-shuffle expiry degrades instead of aborting — the result is
    // complete, bit-identical, and flagged in the lifecycle span.
    let (ref_out, _) = run_join(
        &cluster,
        &query,
        &straggler_config(1, ReplanPolicy::disabled()),
    );
    for threads in [1usize, 2, 8] {
        let run = execute_join(
            &cluster,
            &query,
            &cfg(threads, OnDeadline::FinishCurrentUnit),
        )
        .unwrap_or_else(|e| panic!("threads={threads}: FinishCurrentUnit must complete: {e}"));
        assert_eq!(
            run.array.iter_cells().collect::<Vec<_>>(),
            ref_out.iter_cells().collect::<Vec<_>>(),
            "threads={threads}: degraded completion must still be bit-identical"
        );
        let lifecycle = run
            .telemetry
            .find("lifecycle")
            .expect("lifecycle span must be recorded on completed runs");
        assert_eq!(lifecycle.str_field("state"), Some("deadline_degraded"));
        assert_eq!(lifecycle.bool_field("deadline_exceeded"), Some(true));
    }

    // A comfortably longer deadline completes cleanly under both
    // policies with the lifecycle span reporting `complete`.
    let mut roomy = cfg(2, OnDeadline::Abort);
    roomy.lifecycle.deadline = Some(deadline * 4.0);
    let run = execute_join(&cluster, &query, &roomy).unwrap();
    let lifecycle = run.telemetry.find("lifecycle").unwrap();
    assert_eq!(lifecycle.str_field("state"), Some("complete"));
    assert_eq!(lifecycle.bool_field("deadline_exceeded"), Some(false));
}
