//! End-to-end integration tests: AQL in, verified join results out,
//! across planners, algorithms, and predicate classes.

use std::collections::HashMap;

use skewjoin::join::exec::{execute_join, ExecConfig, JoinQuery};
use skewjoin::join::predicate::JoinPredicate;
use skewjoin::{
    Array, ArrayDb, ArraySchema, Cluster, JoinAlgo, JoinMetrics, MetricsView, NetworkModel,
    Placement, PlannerKind, Value,
};
use std::time::Duration;

/// Run a join and return the result plus the metrics view over its trace.
fn run_join(cluster: &Cluster, query: &JoinQuery, config: &ExecConfig) -> (Array, JoinMetrics) {
    let run = execute_join(cluster, query, config).unwrap();
    let metrics = run.telemetry.join_metrics().unwrap();
    (run.array, metrics)
}

/// Reference implementation: brute-force equi-join over materialized
/// cells, returning sorted (left column values, right column values)
/// match pairs keyed by the predicate columns.
fn brute_force_matches(left: &Array, right: &Array, pairs: &[(&str, &str)]) -> usize {
    let resolve = |schema: &ArraySchema, name: &str, coord: &[i64], values: &[Value]| -> Value {
        if let Ok(d) = schema.dim_index(name) {
            Value::Int(coord[d])
        } else {
            let a = schema.attr_index(name).unwrap();
            values[a].clone()
        }
    };
    let mut table: HashMap<Vec<String>, usize> = HashMap::new();
    for (coord, values) in left.iter_cells() {
        let key: Vec<String> = pairs
            .iter()
            .map(|(l, _)| canonical(resolve(&left.schema, l, &coord, &values)))
            .collect();
        *table.entry(key).or_insert(0) += 1;
    }
    let mut matches = 0usize;
    for (coord, values) in right.iter_cells() {
        let key: Vec<String> = pairs
            .iter()
            .map(|(_, r)| canonical(resolve(&right.schema, r, &coord, &values)))
            .collect();
        matches += table.get(&key).copied().unwrap_or(0);
    }
    matches
}

fn canonical(v: Value) -> String {
    match v {
        Value::Int(i) => format!("{i}"),
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("{}", f as i64),
        other => format!("{other}"),
    }
}

fn load_cluster(k: usize, arrays: Vec<(Array, Placement)>) -> Cluster {
    let mut cluster = Cluster::new(k, NetworkModel::scaled_to_engine());
    for (array, placement) in arrays {
        cluster.load_array(array, &placement).unwrap();
    }
    cluster
}

fn deterministic_array(name: &str, n: i64, chunk: u64, modulo: i64) -> Array {
    let schema = ArraySchema::parse(&format!("{name}<v:int>[i=1,{n},{chunk}]")).unwrap();
    Array::from_cells(
        schema,
        (1..=n).map(|i| (vec![i], vec![Value::Int((i * 7 + 3) % modulo)])),
    )
    .unwrap()
}

#[test]
fn aa_join_matches_brute_force_for_every_planner_and_algo() {
    let a = deterministic_array("A", 300, 50, 40);
    let b = deterministic_array("B", 200, 25, 40);
    let expected = brute_force_matches(&a, &b, &[("v", "v")]);
    assert!(expected > 0, "fixture should produce matches");
    let cluster = load_cluster(
        3,
        vec![(a, Placement::HashSalted(1)), (b, Placement::HashSalted(2))],
    );
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "v")]));
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
        PlannerKind::Ilp {
            budget: Duration::from_millis(500),
        },
        PlannerKind::IlpCoarse {
            budget: Duration::from_millis(500),
            bins: 8,
        },
    ] {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let config = ExecConfig::builder()
                .planner(planner.clone())
                .forced_algo(algo)
                .hash_buckets(16)
                .build()
                .unwrap();
            let (_, metrics) = run_join(&cluster, &query, &config);
            assert_eq!(
                metrics.matches, expected,
                "planner {} × algo {:?} diverged from brute force",
                metrics.planner, algo
            );
        }
    }
}

#[test]
fn dd_join_matches_brute_force_under_different_tilings() {
    // Same dimension space, different chunk intervals: J must reconcile.
    let a = deterministic_array("A", 240, 40, 1000);
    let b = deterministic_array("B", 240, 60, 1000);
    let expected = brute_force_matches(&a, &b, &[("i", "i")]);
    assert_eq!(expected, 240);
    let cluster = load_cluster(4, vec![(a, Placement::RoundRobin), (b, Placement::Block)]);
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i")]));
    let (out, metrics) = run_join(&cluster, &query, &ExecConfig::default());
    assert_eq!(metrics.matches, expected);
    assert_eq!(out.cell_count(), expected);
}

#[test]
fn ad_join_matches_brute_force() {
    let a = deterministic_array("A", 100, 20, 1_000_000); // v = 7i+3
    let b = deterministic_array("B", 80, 16, 90); // v in 0..90
                                                  // A.i (dim) = B.v (attr)
    let expected = brute_force_matches(&a, &b, &[("i", "v")]);
    assert!(expected > 0);
    let cluster = load_cluster(
        2,
        vec![(a, Placement::RoundRobin), (b, Placement::RoundRobin)],
    );
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "v")]));
    let (_, metrics) = run_join(&cluster, &query, &ExecConfig::default());
    assert_eq!(metrics.matches, expected);
}

#[test]
fn multi_pair_predicate_joins() {
    // 2-D D:D on both dimensions.
    let schema_a = ArraySchema::parse("A<x:int>[i=1,32,8, j=1,32,8]").unwrap();
    let schema_b = ArraySchema::parse("B<y:int>[i=1,32,8, j=1,32,8]").unwrap();
    let a = Array::from_cells(
        schema_a,
        (1..=32i64).flat_map(|i| (1..=32i64).map(move |j| (vec![i, j], vec![Value::Int(i)]))),
    )
    .unwrap();
    let b = Array::from_cells(
        schema_b,
        (1..=32i64).flat_map(|i| {
            (1..=32i64)
                .filter(move |j| (i + j) % 2 == 0)
                .map(move |j| (vec![i, j], vec![Value::Int(j)]))
        }),
    )
    .unwrap();
    let expected = brute_force_matches(&a, &b, &[("i", "i"), ("j", "j")]);
    assert_eq!(expected, 512);
    let cluster = load_cluster(
        4,
        vec![(a, Placement::HashSalted(3)), (b, Placement::HashSalted(4))],
    );
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
    let (_, metrics) = run_join(&cluster, &query, &ExecConfig::default());
    assert_eq!(metrics.matches, expected);
}

#[test]
fn aql_to_execution_full_stack() {
    let mut db = ArrayDb::new(3, NetworkModel::scaled_to_engine());
    db.load_default(deterministic_array("A", 120, 30, 25))
        .unwrap();
    db.load_default(deterministic_array("B", 90, 30, 25))
        .unwrap();
    // Join + projection through the whole stack.
    let r = db
        .query("SELECT A.v + B.v AS vv FROM A, B WHERE A.v = B.v")
        .unwrap();
    assert!(r.telemetry.join_metrics().is_some());
    assert_eq!(r.array.schema.attrs[0].name, "vv");
    // Every output value is even (v + v).
    for (_, values) in r.array.iter_cells() {
        let vv = values[0].as_int().unwrap();
        assert_eq!(vv % 2, 0);
    }
}

#[test]
fn join_on_empty_and_disjoint_inputs() {
    let a = deterministic_array("A", 50, 10, 7);
    // B's values 100.. never match A's 0..7.
    let schema_b = ArraySchema::parse("B<v:int>[i=1,50,10]").unwrap();
    let b = Array::from_cells(
        schema_b,
        (1..=50).map(|i| (vec![i], vec![Value::Int(100 + i)])),
    )
    .unwrap();
    let cluster = load_cluster(
        2,
        vec![(a, Placement::RoundRobin), (b, Placement::RoundRobin)],
    );
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "v")]));
    let (out, metrics) = run_join(&cluster, &query, &ExecConfig::default());
    assert_eq!(metrics.matches, 0);
    assert_eq!(out.cell_count(), 0);
}

#[test]
fn scale_out_preserves_results() {
    let a = deterministic_array("A", 256, 32, 64);
    let b = deterministic_array("B", 256, 32, 64);
    let expected = brute_force_matches(&a, &b, &[("v", "v")]);
    let mut match_counts = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let cluster = load_cluster(
            k,
            vec![
                (a.clone(), Placement::HashSalted(1)),
                (b.clone(), Placement::HashSalted(2)),
            ],
        );
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "v")]));
        let (_, metrics) = run_join(&cluster, &query, &ExecConfig::default());
        match_counts.push(metrics.matches);
    }
    assert!(match_counts.iter().all(|&m| m == expected));
}

#[test]
fn metrics_are_internally_consistent() {
    let a = deterministic_array("A", 200, 25, 50);
    let b = deterministic_array("B", 200, 25, 50);
    let cluster = load_cluster(
        4,
        vec![(a, Placement::HashSalted(1)), (b, Placement::HashSalted(2))],
    );
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i")]));
    let (_, m) = run_join(&cluster, &query, &ExecConfig::default());
    assert!(m.total_seconds() >= m.alignment_seconds);
    assert!(m.comparison_seconds >= 0.0);
    assert_eq!(m.per_node_comparison.len(), 4);
    let max_node = m.per_node_comparison.iter().copied().fold(0.0f64, f64::max);
    assert!(m.comparison_seconds >= max_node);
    if m.cells_moved == 0 {
        assert_eq!(m.network_bytes, 0);
    } else {
        assert!(m.network_bytes > 0);
    }
}
