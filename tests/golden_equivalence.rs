//! Golden-equivalence suite for the plan-IR pipeline.
//!
//! Every AFL operator and representative AQL queries are executed through
//! the engine's single path (`lower → rewrite → run_plan`) and compared —
//! cell for cell, chunk for chunk, **without** sorting before comparison —
//! against the legacy composition the old interpreters ran: `gather`
//! followed by the whole-array `ops::*` wrappers (or the shuffle-join
//! executor directly). Arrays are randomized via the vendored proptest
//! shim, and every query runs at `ExecConfig.threads` = 1, 2, and 8: the
//! pipeline's contract is that thread count changes wall-clock time only,
//! never a single cell.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeMap;

use skewjoin::array::ops::{self, RedimPolicy};
use skewjoin::array::BinOp;
use skewjoin::join::exec::{execute_shuffle_join, ExecConfig, JoinQuery};
use skewjoin::join::predicate::JoinPredicate;
use skewjoin::lang::rewrite_for_output;
use skewjoin::{Array, ArrayDb, ArraySchema, Expr, NetworkModel, QueryResult, Value};

const THREADS: [usize; 3] = [1, 2, 8];

/// Random cells for a 2-attribute 2-D array, deduplicated by coordinate.
type Cells = Vec<(i64, i64, i64, i64)>;

fn dedup(cells: &Cells) -> BTreeMap<(i64, i64), (i64, i64)> {
    cells.iter().map(|&(i, j, v, w)| ((i, j), (v, w))).collect()
}

fn build_array(name: &str, cells: &Cells) -> Array {
    let schema = ArraySchema::parse(&format!("{name}<v:int, w:int>[i=1,12,4, j=1,12,4]")).unwrap();
    Array::from_cells(
        schema,
        dedup(cells)
            .into_iter()
            .map(|((i, j), (v, w))| (vec![i, j], vec![Value::Int(v), Value::Int(w)])),
    )
    .unwrap()
}

fn db_with(cells_a: &Cells, cells_b: &Cells) -> ArrayDb {
    let mut db = ArrayDb::new(3, NetworkModel::gigabit());
    db.load_default(build_array("A", cells_a)).unwrap();
    db.load_default(build_array("B", cells_b)).unwrap();
    db
}

/// Run `query` through the pipeline at 1, 2, and 8 threads and assert
/// every run produces exactly `expected`.
fn assert_pipeline_matches<F>(db: &mut ArrayDb, run: F, expected: &Array)
where
    F: Fn(&ArrayDb) -> skewjoin::Result<QueryResult>,
{
    for threads in THREADS {
        db.set_exec_config(ExecConfig {
            threads,
            ..ExecConfig::default()
        });
        let got = run(db).unwrap();
        assert_eq!(
            &got.array, expected,
            "pipeline result diverged from legacy at threads={threads}"
        );
    }
}

fn gt(col: &str, t: i64) -> Expr {
    Expr::binary(BinOp::Gt, Expr::col(col), Expr::int(t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// filter / sort(filter) / project / between match the legacy
    /// gather-then-ops composition bit for bit.
    #[test]
    fn afl_row_ops_match_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
        t in 1i64..=30,
        lo in 1i64..=12,
        span in 0i64..=11,
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        let hi = (lo + span).min(12);

        let expected = ops::filter(&gathered, &gt("v", t)).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("filter(A, v > {t})")), &expected);

        let expected = ops::sort(&ops::filter(&gathered, &gt("v", t)).unwrap());
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("sort(filter(A, v > {t}))")),
            &expected,
        );

        let expected = ops::project(&gathered, &["w"]).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl("project(A, w)"), &expected);

        let expected = ops::between(&gathered, &[lo, lo], &[hi, hi]).unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("between(A, {lo}, {lo}, {hi}, {hi})")),
            &expected,
        );
    }

    /// redim and rechunk into a schema literal match the legacy wrappers.
    #[test]
    fn afl_reorganization_matches_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        let target = "<i:int, j:int, w:int>[v=1,30,10]";
        let schema = ArraySchema::parse(&format!("anonymous{target}")).unwrap();

        let expected = ops::redim(&gathered, &schema, RedimPolicy::Strict).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("redim(A, {target})")), &expected);

        let expected = ops::rechunk(&gathered, &schema, RedimPolicy::Strict).unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("rechunk(A, {target})")),
            &expected,
        );
    }

    /// Every aggregate function reproduces the legacy single-cell result
    /// (including float-sum evaluation order).
    #[test]
    fn afl_aggregates_match_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        for func in ["count", "sum", "avg", "min", "max"] {
            let agg = ops::AggFn::parse(func).unwrap();
            let value = ops::aggregate(&gathered, agg, "v").unwrap();
            let schema = ArraySchema::new(
                "agg",
                vec![skewjoin::DimensionDef::new("r", 0, 0, 1).unwrap()],
                vec![skewjoin::AttributeDef::new(func, value.data_type())],
            )
            .unwrap();
            let expected = Array::from_cells(schema, vec![(vec![0], vec![value])]).unwrap();
            assert_pipeline_matches(
                &mut db,
                |db| db.afl(&format!("aggregate(A, {func}, v)")),
                &expected,
            );
        }
    }

    /// merge(A, B) matches running the shuffle-join executor directly.
    #[test]
    fn afl_merge_matches_shuffle_join(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
    ) {
        let mut db = db_with(&cells_a, &cells_b);
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("i", "i"), ("j", "j")]),
        );
        let (expected, _) =
            execute_shuffle_join(db.cluster(), &query, &ExecConfig::default()).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl("merge(A, B)"), &expected);
    }

    /// hash(A, n) — new in the pipeline — partitions every cell into an
    /// in-range bucket, identically at every thread count.
    #[test]
    fn afl_hash_partitions_every_cell(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
        buckets in 1usize..=16,
    ) {
        let mut db = db_with(&cells, &cells);
        let total = db.gather("A").unwrap().cell_count();
        let reference = db.afl(&format!("hash(A, {buckets})")).unwrap().array;
        prop_assert_eq!(reference.cell_count(), total);
        for (coords, _) in reference.iter_cells() {
            prop_assert!((0..buckets as i64).contains(&coords[0]));
        }
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("hash(A, {buckets})")), &reference);
    }

    /// Representative AQL queries (filter + projection + INTO, and a
    /// projected join) match the legacy gather/ops/shuffle composition.
    #[test]
    fn aql_queries_match_legacy(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        t in 1i64..=30,
    ) {
        let mut db = db_with(&cells_a, &cells_b);

        // Single-array: gather → filter → apply → rename.
        let gathered = db.gather("A").unwrap();
        let filtered = ops::filter(&gathered, &gt("v", t)).unwrap();
        let mut expected =
            ops::apply(&filtered, &[("y".to_string(), Expr::col("w"))]).unwrap();
        expected.schema.name = "T".to_string();
        assert_pipeline_matches(
            &mut db,
            |db| db.query(&format!("SELECT w AS y INTO T FROM A WHERE v > {t}")),
            &expected,
        );

        // Join with a projection expression over the output schema.
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("i", "i"), ("j", "j")]),
        );
        let (joined, _) =
            execute_shuffle_join(db.cluster(), &query, &ExecConfig::default()).unwrap();
        let proj = Expr::binary(BinOp::Sub, Expr::col("A.v"), Expr::col("B.v"));
        let expected = ops::apply(
            &joined,
            &[("d".to_string(), rewrite_for_output(&proj, &joined.schema))],
        )
        .unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.query("SELECT A.v - B.v AS d FROM A, B WHERE A.i = B.i AND A.j = B.j"),
            &expected,
        );
    }
}
