//! Golden-equivalence suite for the plan-IR pipeline.
//!
//! Every AFL operator and representative AQL queries are executed through
//! the engine's single path (`lower → rewrite → run_plan`) and compared —
//! cell for cell, chunk for chunk, **without** sorting before comparison —
//! against the legacy composition the old interpreters ran: `gather`
//! followed by the whole-array `ops::*` wrappers (or the shuffle-join
//! executor directly). Arrays are randomized via the vendored proptest
//! shim, and every query runs at `ExecConfig.threads` = 1, 2, and 8: the
//! pipeline's contract is that thread count changes wall-clock time only,
//! never a single cell.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeMap;

use skewjoin::array::ops::{self, RedimPolicy};
use skewjoin::array::BinOp;
use skewjoin::join::exec::{execute_join, ExecConfig, JoinQuery};
use skewjoin::join::predicate::JoinPredicate;
use skewjoin::lang::rewrite_for_output;
use skewjoin::{Array, ArrayDb, ArraySchema, Expr, NetworkModel, QueryResult, Value};

const THREADS: [usize; 3] = [1, 2, 8];

/// Random cells for a 2-attribute 2-D array, deduplicated by coordinate.
type Cells = Vec<(i64, i64, i64, i64)>;

fn dedup(cells: &Cells) -> BTreeMap<(i64, i64), (i64, i64)> {
    cells.iter().map(|&(i, j, v, w)| ((i, j), (v, w))).collect()
}

fn build_array(name: &str, cells: &Cells) -> Array {
    let schema = ArraySchema::parse(&format!("{name}<v:int, w:int>[i=1,12,4, j=1,12,4]")).unwrap();
    Array::from_cells(
        schema,
        dedup(cells)
            .into_iter()
            .map(|((i, j), (v, w))| (vec![i, j], vec![Value::Int(v), Value::Int(w)])),
    )
    .unwrap()
}

fn db_with(cells_a: &Cells, cells_b: &Cells) -> ArrayDb {
    let mut db = ArrayDb::new(3, NetworkModel::gigabit());
    db.load_default(build_array("A", cells_a)).unwrap();
    db.load_default(build_array("B", cells_b)).unwrap();
    db
}

/// Run `query` through the pipeline at 1, 2, and 8 threads and assert
/// every run produces exactly `expected`.
fn assert_pipeline_matches<F>(db: &mut ArrayDb, run: F, expected: &Array)
where
    F: Fn(&ArrayDb) -> skewjoin::Result<QueryResult>,
{
    for threads in THREADS {
        db.set_exec_config(ExecConfig::builder().threads(threads).build().unwrap());
        let got = run(db).unwrap();
        assert_eq!(
            &got.array, expected,
            "pipeline result diverged from legacy at threads={threads}"
        );
    }
}

fn gt(col: &str, t: i64) -> Expr {
    Expr::binary(BinOp::Gt, Expr::col(col), Expr::int(t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// filter / sort(filter) / project / between match the legacy
    /// gather-then-ops composition bit for bit.
    #[test]
    fn afl_row_ops_match_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
        t in 1i64..=30,
        lo in 1i64..=12,
        span in 0i64..=11,
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        let hi = (lo + span).min(12);

        let expected = ops::filter(&gathered, &gt("v", t)).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("filter(A, v > {t})")), &expected);

        let expected = ops::sort(&ops::filter(&gathered, &gt("v", t)).unwrap());
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("sort(filter(A, v > {t}))")),
            &expected,
        );

        let expected = ops::project(&gathered, &["w"]).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl("project(A, w)"), &expected);

        let expected = ops::between(&gathered, &[lo, lo], &[hi, hi]).unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("between(A, {lo}, {lo}, {hi}, {hi})")),
            &expected,
        );
    }

    /// redim and rechunk into a schema literal match the legacy wrappers.
    #[test]
    fn afl_reorganization_matches_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        let target = "<i:int, j:int, w:int>[v=1,30,10]";
        let schema = ArraySchema::parse(&format!("anonymous{target}")).unwrap();

        let expected = ops::redim(&gathered, &schema, RedimPolicy::Strict).unwrap();
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("redim(A, {target})")), &expected);

        let expected = ops::rechunk(&gathered, &schema, RedimPolicy::Strict).unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.afl(&format!("rechunk(A, {target})")),
            &expected,
        );
    }

    /// Every aggregate function reproduces the legacy single-cell result
    /// (including float-sum evaluation order).
    #[test]
    fn afl_aggregates_match_legacy(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
    ) {
        let mut db = db_with(&cells, &cells);
        let gathered = db.gather("A").unwrap();
        for func in ["count", "sum", "avg", "min", "max"] {
            let agg = ops::AggFn::parse(func).unwrap();
            let value = ops::aggregate(&gathered, agg, "v").unwrap();
            let schema = ArraySchema::new(
                "agg",
                vec![skewjoin::DimensionDef::new("r", 0, 0, 1).unwrap()],
                vec![skewjoin::AttributeDef::new(func, value.data_type())],
            )
            .unwrap();
            let expected = Array::from_cells(schema, vec![(vec![0], vec![value])]).unwrap();
            assert_pipeline_matches(
                &mut db,
                |db| db.afl(&format!("aggregate(A, {func}, v)")),
                &expected,
            );
        }
    }

    /// merge(A, B) matches running the shuffle-join executor directly.
    #[test]
    fn afl_merge_matches_shuffle_join(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
    ) {
        let mut db = db_with(&cells_a, &cells_b);
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("i", "i"), ("j", "j")]),
        );
        let expected = execute_join(db.cluster(), &query, &ExecConfig::default())
            .unwrap()
            .array;
        assert_pipeline_matches(&mut db, |db| db.afl("merge(A, B)"), &expected);
    }

    /// hash(A, n) — new in the pipeline — partitions every cell into an
    /// in-range bucket, identically at every thread count.
    #[test]
    fn afl_hash_partitions_every_cell(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
        buckets in 1usize..=16,
    ) {
        let mut db = db_with(&cells, &cells);
        let total = db.gather("A").unwrap().cell_count();
        let reference = db.afl(&format!("hash(A, {buckets})")).unwrap().array;
        prop_assert_eq!(reference.cell_count(), total);
        for (coords, _) in reference.iter_cells() {
            prop_assert!((0..buckets as i64).contains(&coords[0]));
        }
        assert_pipeline_matches(&mut db, |db| db.afl(&format!("hash(A, {buckets})")), &reference);
    }

    /// Representative AQL queries (filter + projection + INTO, and a
    /// projected join) match the legacy gather/ops/shuffle composition.
    #[test]
    fn aql_queries_match_legacy(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        t in 1i64..=30,
    ) {
        let mut db = db_with(&cells_a, &cells_b);

        // Single-array: gather → filter → apply → rename.
        let gathered = db.gather("A").unwrap();
        let filtered = ops::filter(&gathered, &gt("v", t)).unwrap();
        let mut expected =
            ops::apply(&filtered, &[("y".to_string(), Expr::col("w"))]).unwrap();
        expected.schema.name = "T".to_string();
        assert_pipeline_matches(
            &mut db,
            |db| db.query(&format!("SELECT w AS y INTO T FROM A WHERE v > {t}")),
            &expected,
        );

        // Join with a projection expression over the output schema.
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("i", "i"), ("j", "j")]),
        );
        let joined = execute_join(db.cluster(), &query, &ExecConfig::default())
            .unwrap()
            .array;
        let proj = Expr::binary(BinOp::Sub, Expr::col("A.v"), Expr::col("B.v"));
        let expected = ops::apply(
            &joined,
            &[("d".to_string(), rewrite_for_output(&proj, &joined.schema))],
        )
        .unwrap();
        assert_pipeline_matches(
            &mut db,
            |db| db.query("SELECT A.v - B.v AS d FROM A, B WHERE A.i = B.i AND A.j = B.j"),
            &expected,
        );
    }
}

// ---------------------------------------------------------------------
// Normalized-key kernels vs. the legacy paths they replaced
// ---------------------------------------------------------------------
//
// Everything the suite above runs now rides the radix sorts and the
// columnar hash join. Their pre-rewrite implementations are kept
// callable; this pins, on randomized arrays, that each kernel is
// bit-identical to its legacy counterpart — ordering and emission order
// included — so the thread-sweep assertions above carry over to the
// legacy semantics unchanged.

use skewjoin::array::Histogram;
use skewjoin::join::algorithms::{hash_join, hash_join_rowwise, Emitter};
use skewjoin::join::join_schema::{infer_join_schema, ColumnStats};
use skewjoin::join::predicate::JoinSide;
use skewjoin::{CellBatch, DataType};

/// Flatten an array into the dimension-less join-unit layout
/// (dimensions materialized as leading attribute columns).
fn unit_layout(array: &Array) -> CellBatch {
    let ndims = array.schema.ndims();
    let mut types: Vec<DataType> = vec![DataType::Int64; ndims];
    types.extend(array.schema.attrs.iter().map(|d| d.dtype));
    let mut flat = CellBatch::new(0, &types);
    let mut row: Vec<Value> = Vec::new();
    for (coords, values) in array.iter_cells() {
        row.clear();
        row.extend(coords.iter().map(|&c| Value::Int(c)));
        row.extend(values);
        flat.push(&[], &row).unwrap();
    }
    flat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-chunk C-order and key-order radix sorts are bit-identical to
    /// the legacy comparator sorts on randomized arrays.
    #[test]
    fn radix_sorts_match_legacy_comparator_sorts(
        cells in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..80),
    ) {
        let a = build_array("A", &cells);
        for (_, chunk) in a.chunks() {
            let n = chunk.cells.len();
            let mut radix = chunk.cells.clone();
            radix.apply_permutation(&(0..n).rev().collect::<Vec<_>>());
            let mut comparator = radix.clone();
            radix.sort_c_order();
            comparator.sort_c_order_comparator();
            prop_assert_eq!(&radix, &comparator);
        }
        let mut radix = unit_layout(&a);
        let mut comparator = radix.clone();
        radix.sort_by_attr_columns(&[2, 3]);
        comparator.sort_by_attr_columns_comparator(&[2, 3]);
        prop_assert_eq!(&radix, &comparator);
    }

    /// The columnar bucket-chain hash join emits exactly what the legacy
    /// row-wise HashMap join emitted — same matches, same order.
    #[test]
    fn columnar_hash_join_matches_rowwise_join(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=12, 1i64..=30, 1i64..=30), 1..60),
    ) {
        let a = build_array("A", &cells_a);
        let b = build_array("B", &cells_b);
        let p = JoinPredicate::new(vec![("v", "v"), ("w", "w")]);
        let mut stats = ColumnStats::new();
        for (side, arr) in [(JoinSide::Left, &a), (JoinSide::Right, &b)] {
            for (idx, attr) in ["v", "w"].iter().enumerate() {
                let hist = Histogram::build(
                    arr.iter_cells().map(|(_, vs)| vs[idx].clone()),
                    8,
                )
                .unwrap();
                stats.insert(side, *attr, hist);
            }
        }
        let js = infer_join_schema(&a.schema, &b.schema, &p, None, &stats).unwrap();
        let (l, r) = (unit_layout(&a), unit_layout(&b));
        let keys = [2usize, 3];

        let mut em_new = Emitter::new(&js);
        let n_new = hash_join(&l, &keys, &r, &keys, &mut em_new).unwrap();
        let mut em_old = Emitter::new(&js);
        let n_old = hash_join_rowwise(&l, &keys, &r, &keys, &mut em_old).unwrap();
        prop_assert_eq!(n_new, n_old);
        prop_assert_eq!(&em_new.out, &em_old.out);
    }
}
