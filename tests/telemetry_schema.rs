//! Golden-file pinning of the telemetry span schema and JSON sink.
//!
//! The span taxonomy (names, nesting, field keys) is a public contract:
//! the metrics views reconstruct `JoinMetrics`/`PipelineStats` from it
//! and external tooling parses the JSON-lines export. This suite pins
//! the deduplicated schema of a full engine-path join query against
//! `tests/golden/telemetry_schema.txt` (re-bless with
//! `BLESS_GOLDEN=1 cargo test --test telemetry_schema`), and checks the
//! schema is identical at 1, 2, and 8 worker threads.

use skewjoin::{
    Array, ArrayDb, ArraySchema, ExecConfig, JoinAlgo, MetricsView, NetworkModel, PlannerKind,
    QueryResult, TelemetryConfig, Value,
};

fn deterministic_array(name: &str, n: i64, chunk: u64, modulo: i64) -> Array {
    let schema = ArraySchema::parse(&format!("{name}<v:int>[i=1,{n},{chunk}]")).unwrap();
    Array::from_cells(
        schema,
        (1..=n).map(|i| (vec![i], vec![Value::Int((i * 7 + 3) % modulo)])),
    )
    .unwrap()
}

/// A full engine-path join (parse → bind → lower → rewrite → pipeline →
/// join) with a fixed plan so every span the executor can emit on the
/// fault-free path appears in the tree.
fn run_query(threads: usize, telemetry: TelemetryConfig) -> QueryResult {
    let mut db = ArrayDb::new(4, NetworkModel::scaled_to_engine());
    db.load_default(deterministic_array("A", 300, 50, 40))
        .unwrap();
    db.load_default(deterministic_array("B", 200, 25, 40))
        .unwrap();
    db.set_exec_config(
        ExecConfig::builder()
            .planner(PlannerKind::Tabu)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(16)
            .threads(threads)
            .telemetry(telemetry)
            .build()
            .unwrap(),
    );
    db.query("SELECT * FROM A, B WHERE A.v = B.v").unwrap()
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/telemetry_schema.txt"
);

#[test]
fn span_schema_matches_golden_file() {
    let result = run_query(2, TelemetryConfig::Tree);
    assert!(result.telemetry.join_metrics().is_some());
    let schema = result.telemetry.schema_signature();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &schema).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_default();
    assert_eq!(
        schema, golden,
        "telemetry span schema changed; if intentional, re-bless with \
         BLESS_GOLDEN=1 cargo test --test telemetry_schema and document \
         the change in DESIGN.md §11"
    );
}

#[test]
fn span_schema_is_thread_invariant() {
    let reference = run_query(1, TelemetryConfig::Tree);
    for threads in [2usize, 8] {
        let result = run_query(threads, TelemetryConfig::Tree);
        assert_eq!(
            result.telemetry.schema_signature(),
            reference.telemetry.schema_signature(),
            "span schema differs at threads={threads}"
        );
        assert_eq!(
            result.telemetry.structure_signature(),
            reference.telemetry.structure_signature(),
            "span structure differs at threads={threads}"
        );
    }
}

#[test]
fn json_sink_writes_one_object_per_span() {
    let path = std::env::temp_dir().join(format!("sj_trace_test_{}.jsonl", std::process::id()));
    let sink = TelemetryConfig::Json {
        path: path.to_string_lossy().into_owned(),
    };
    let result = run_query(2, sink);
    let json = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let lines: Vec<&str> = json.lines().collect();
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    // One object per span, then the counters object.
    fn count_spans(node: &skewjoin::telemetry::SpanNode) -> usize {
        1 + node.children.iter().map(count_spans).sum::<usize>()
    }
    let spans: usize = result.telemetry.roots.iter().map(count_spans).sum();
    assert_eq!(lines.len(), spans + 1);
    assert!(lines[0].contains("\"span\":\"query\""));
    assert!(lines.last().unwrap().starts_with("{\"counters\":{"));
    assert!(json.contains("\"path\":\"query/pipeline/join/shuffle\""));
}

#[test]
fn off_config_keeps_results_and_skips_collection() {
    let result = run_query(2, TelemetryConfig::Off);
    assert!(result.array.cell_count() > 0);
    assert!(!result.telemetry.enabled);
    assert!(result.telemetry.roots.is_empty());
    assert!(result.telemetry.join_metrics().is_none());
}
