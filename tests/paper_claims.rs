//! Scaled-down assertions of the paper's headline experimental claims.
//!
//! Each test mirrors one claim from §6 of *Skew-Aware Join Optimization
//! for Array Databases* at laptop scale. Absolute numbers differ from the
//! paper's testbed; the *direction* of every claim must hold.

use skewjoin::join::exec::{calibrate_cost_params, execute_join, ExecConfig, JoinQuery};
use skewjoin::join::join_schema::infer_join_schema;
use skewjoin::join::logical::{plan_join, LogicalStats};
use skewjoin::join::predicate::JoinPredicate;
use skewjoin::workload::{
    ais_broadcasts, modis_band, selectivity_pair, skewed_pair, AisConfig, GeoConfig,
    SkewedArrayConfig,
};
use skewjoin::MetricsView;
use skewjoin::{Cluster, JoinAlgo, NetworkModel, Placement, PlannerKind};

fn params() -> skewjoin::join::physical::CostParams {
    calibrate_cost_params(&NetworkModel::scaled_to_engine(), 32)
}

/// §6.1: "the plan with the minimum cost also had the shortest duration"
/// — across selectivities, the logical planner's choice is never the
/// slowest algorithm, and nested loop is never chosen.
#[test]
fn logical_planner_never_picks_nested_loop() {
    for sel in [0.01, 0.1, 1.0, 10.0] {
        let (a, b) = selectivity_pair(5_000, 500, sel, 99);
        let out = skewjoin::workload::selectivity_output_schema(5_000, 500, sel);
        let p = JoinPredicate::new(vec![("v", "w")]);
        let stats = skewjoin::join::join_schema::stats_for_predicate(&a, &b, &p).unwrap();
        let js = infer_join_schema(&a.schema, &b.schema, &p, Some(out), &stats).unwrap();
        let lstats = LogicalStats::for_arrays(&a, &b, sel, 1);
        let plan = plan_join(&js, &a.schema, &b.schema, &lstats).unwrap();
        assert_ne!(
            plan.algo,
            JoinAlgo::NestedLoop,
            "sel {sel} picked nested loop"
        );
    }
}

/// §6.1 / Figure 6: hash wins at low selectivity, merge at high.
#[test]
fn selectivity_crossover_between_hash_and_merge() {
    let pick = |sel: f64| {
        let (a, b) = selectivity_pair(5_000, 500, sel, 7);
        let out = skewjoin::workload::selectivity_output_schema(5_000, 500, sel);
        let p = JoinPredicate::new(vec![("v", "w")]);
        let stats = skewjoin::join::join_schema::stats_for_predicate(&a, &b, &p).unwrap();
        let js = infer_join_schema(&a.schema, &b.schema, &p, Some(out), &stats).unwrap();
        let lstats = LogicalStats::for_arrays(&a, &b, sel, 1);
        plan_join(&js, &a.schema, &b.schema, &lstats).unwrap().algo
    };
    assert_eq!(pick(0.01), JoinAlgo::Hash);
    assert_eq!(pick(100.0), JoinAlgo::Merge);
}

/// §6.3.1 / Figure 9 (beneficial skew): the skew-aware planners beat the
/// baseline end-to-end and move far less data.
#[test]
fn beneficial_skew_speedup_over_baseline() {
    let geo = GeoConfig {
        time_extent: 1024,
        time_chunk: 1024,
        lon_chunks: 16,
        lat_chunks: 8,
        deg_per_chunk: 16,
        cells: 60_000,
        seed: 2015,
    };
    let band = modis_band(&geo, "Band1", 1);
    let ais = ais_broadcasts(
        &AisConfig {
            port_zipf_alpha: 0.7,
            ..AisConfig::new(GeoConfig {
                cells: 40_000,
                ..geo
            })
        },
        "Broadcast",
    );
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(band, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(ais, &Placement::HashSalted(2)).unwrap();
    let query = JoinQuery::new(
        "Band1",
        "Broadcast",
        JoinPredicate::new(vec![("lon", "lon"), ("lat", "lat")]),
    );
    let shared_params = params();
    let run = move |planner: PlannerKind| {
        let config = ExecConfig::builder()
            .planner(planner)
            .forced_algo(JoinAlgo::Merge)
            .cost_params(shared_params)
            .build()
            .unwrap();
        let out = execute_join(&cluster, &query, &config).unwrap();
        out.telemetry.join_metrics().unwrap()
    };
    let base = run(PlannerKind::Baseline);
    let tabu = run(PlannerKind::Tabu);
    assert!(
        tabu.cells_moved * 2 < base.cells_moved,
        "tabu moved {} vs baseline {}",
        tabu.cells_moved,
        base.cells_moved
    );
    assert!(
        tabu.alignment_seconds < base.alignment_seconds,
        "alignment: tabu {} vs baseline {}",
        tabu.alignment_seconds,
        base.alignment_seconds
    );
}

/// §6.3.2 / Figure 9 (adversarial skew): with aligned band sizes all
/// planners produce comparable plans — skew-awareness costs nothing.
#[test]
fn adversarial_skew_planners_comparable() {
    let geo = GeoConfig {
        time_extent: 512,
        time_chunk: 512,
        lon_chunks: 12,
        lat_chunks: 6,
        deg_per_chunk: 16,
        cells: 50_000,
        seed: 5,
    };
    let b1 = modis_band(&geo, "Band1", 1);
    let b2 = modis_band(&geo, "Band2", 2);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(b1, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b2, &Placement::HashSalted(2)).unwrap();
    let query = JoinQuery::new(
        "Band1",
        "Band2",
        JoinPredicate::new(vec![("time", "time"), ("lon", "lon"), ("lat", "lat")]),
    );
    let shared_params = params();
    let mut est_costs = Vec::new();
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ] {
        let config = ExecConfig::builder()
            .planner(planner)
            .forced_algo(JoinAlgo::Merge)
            .cost_params(shared_params)
            .build()
            .unwrap();
        let out = execute_join(&cluster, &query, &config).unwrap();
        let m = out.telemetry.join_metrics().unwrap();
        est_costs.push(m.est_physical_cost);
    }
    let max = est_costs.iter().copied().fold(0.0f64, f64::max);
    let min = est_costs.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max / min.max(1e-12) < 2.0,
        "adversarial estimated costs diverge: {est_costs:?}"
    );
}

/// §6.2: under uniform data (α = 0) every planner produces plans of
/// similar analytical quality.
#[test]
fn uniform_data_planners_agree() {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 8,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 0.0,
        value_domain: 20_000,
        seed: 3,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b, &Placement::HashSalted(2)).unwrap();
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
    let shared_params = params();
    let mut costs = Vec::new();
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ] {
        let config = ExecConfig::builder()
            .planner(planner)
            .forced_algo(JoinAlgo::Merge)
            .cost_params(shared_params)
            .build()
            .unwrap();
        let out = execute_join(&cluster, &query, &config).unwrap();
        let m = out.telemetry.join_metrics().unwrap();
        costs.push(m.est_physical_cost);
    }
    let max = costs.iter().copied().fold(0.0f64, f64::max);
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max / min.max(1e-12) < 1.8,
        "uniform costs diverge: {costs:?}"
    );
}

/// §5.2: the ILP with a generous budget never produces a plan with a
/// worse analytical cost than the greedy heuristics (it is seeded with
/// MBH and only improves).
#[test]
fn ilp_never_worse_than_heuristics() {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 4, // 16 join units: small enough for the ILP to close
        chunk_interval: 64,
        cells: 20_000,
        spatial_alpha: 1.5,
        value_alpha: 0.0,
        value_domain: 10_000,
        seed: 11,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(3, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b, &Placement::HashSalted(2)).unwrap();
    let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
    // Calibrate once: per-run calibration would cost each planner's plan
    // under different (timing-noisy) parameters, making them incomparable.
    let shared_params = params();
    let run = move |planner: PlannerKind| {
        let config = ExecConfig::builder()
            .planner(planner)
            .forced_algo(JoinAlgo::Merge)
            .cost_params(shared_params)
            .build()
            .unwrap();
        let out = execute_join(&cluster, &query, &config).unwrap();
        out.telemetry.join_metrics().unwrap()
    };
    let mbh = run(PlannerKind::MinBandwidth).est_physical_cost;
    let tabu = run(PlannerKind::Tabu).est_physical_cost;
    let ilp_run = run(PlannerKind::Ilp {
        budget: std::time::Duration::from_secs(10),
    });
    let ilp = ilp_run.est_physical_cost;
    // The ILP is seeded with the MBH plan, so it can never be
    // meaningfully worse (tolerance matches the solver's relative gap).
    let tol = |x: f64| 1e-5 * x.abs().max(1.0);
    assert!(ilp <= mbh + tol(mbh), "ILP ({ilp}) worse than MBH ({mbh})");
    // Beating Tabu is only guaranteed when the solver proves optimality
    // within its budget (in debug builds the LP may time out and return
    // the warm start — the paper observes the same budget sensitivity).
    if ilp_run.solver_status == Some(sj_ilp_status_optimal()) {
        assert!(
            ilp <= tabu + tol(tabu),
            "optimal ILP ({ilp}) worse than Tabu ({tabu})"
        );
    }
}

fn sj_ilp_status_optimal() -> skewjoin::ilp::SolveStatus {
    skewjoin::ilp::SolveStatus::Optimal
}
