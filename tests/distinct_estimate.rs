//! Error bounds for the histogram's mergeable distinct-count sketch on
//! Zipf-skewed data.
//!
//! The Selinger DP costs every join subset from `|R ⋈ S| ≈ |R|·|S| /
//! max(ndv)`, so the distinct-value estimate is the number the whole
//! cost model leans on — and array workloads are exactly where it is
//! hardest: Zipf-skewed join keys concentrate mass on a few hot values
//! while a long tail carries the distinct count. This suite draws
//! Zipf(α) keys at α = 0.5 / 1.0 / 1.5 (the paper's §6 skew sweep
//! range), checks the sketch's relative error against the true distinct
//! count, and pins the O(1) merge: combining per-shard sketches is
//! *exactly* the single-pass sketch, register for register.

use skewjoin::array::Histogram;
use skewjoin::workload::{Rng64, Zipf};
use skewjoin::Value;

/// Zipf(α) sample of `n` keys over `ranks` ranks, plus the exact number
/// of distinct keys drawn.
fn zipf_keys(alpha: f64, ranks: usize, n: usize, seed: u64) -> (Vec<Value>, usize) {
    let zipf = Zipf::new(ranks, alpha);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut seen = vec![false; ranks];
    let keys: Vec<Value> = (0..n)
        .map(|_| {
            let r = zipf.sample(&mut rng);
            seen[r] = true;
            Value::Int(r as i64)
        })
        .collect();
    (keys, seen.iter().filter(|&&s| s).count())
}

/// The sketch's standard error with 64 registers is ≈ 1.04/√64 ≈ 13%;
/// the bound below gives a little over 2σ of headroom so the test is
/// deterministic-seed-stable without being vacuous.
const MAX_RELATIVE_ERROR: f64 = 0.30;

#[test]
fn distinct_estimate_error_is_bounded_across_zipf_skews() {
    for &alpha in &[0.5, 1.0, 1.5] {
        for seed in 1..=3u64 {
            let (keys, truth) = zipf_keys(alpha, 5_000, 20_000, 7 * seed);
            let hist = Histogram::build(keys, 64).unwrap();
            let est = hist.distinct();
            let err = (est - truth as f64).abs() / truth as f64;
            assert!(
                err <= MAX_RELATIVE_ERROR,
                "alpha={alpha} seed={seed}: estimated {est:.0} distinct vs {truth} \
                 true ({:.1}% error, bound {:.0}%)",
                err * 100.0,
                MAX_RELATIVE_ERROR * 100.0
            );
        }
    }
}

#[test]
fn high_skew_does_not_collapse_the_estimate() {
    // At α = 1.5 most draws hit a handful of hot ranks; the estimate
    // must still track the tail's distinct count, not the hot set.
    let (keys, truth) = zipf_keys(1.5, 5_000, 20_000, 42);
    let hist = Histogram::build(keys, 64).unwrap();
    assert!(truth > 100, "workload sanity: the tail should be wide");
    assert!(
        hist.distinct() >= truth as f64 * (1.0 - MAX_RELATIVE_ERROR),
        "estimate {} collapsed below the distinct tail {truth}",
        hist.distinct()
    );
}

#[test]
fn sharded_merge_is_exactly_the_single_pass_sketch() {
    for &alpha in &[0.5, 1.0, 1.5] {
        let (keys, _) = zipf_keys(alpha, 5_000, 20_000, 99);
        let whole = Histogram::build(keys.clone(), 64).unwrap();

        // Build one sketch per shard (as each cluster node would) and
        // fold them together with the O(1) register-max merge.
        let shard_size = keys.len().div_ceil(8);
        let mut merged: Option<Histogram> = None;
        for shard in keys.chunks(shard_size) {
            let h = Histogram::build(shard.to_vec(), 64).unwrap();
            match &mut merged {
                None => merged = Some(h),
                Some(m) => m.merge_distinct(&h),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(
            merged.distinct_sketch, whole.distinct_sketch,
            "alpha={alpha}: merged shard sketches diverged from the single pass"
        );
        assert_eq!(merged.distinct(), whole.distinct());
    }
}
