//! Thread-count determinism of the parallel executor.
//!
//! The executor's contract: `ExecConfig.threads` changes wall-clock time
//! only, never results. This runs the Figure-8-style hash-skew join on a
//! 4-node cluster with 1, 2, and 8 worker threads and asserts the
//! gathered output arrays, match counts, and shuffle transfer totals are
//! identical — cell for cell, in order, with no sorting applied before
//! comparison.

use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::{execute_shuffle_join, ExecConfig, JoinQuery};
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

fn skewed_cluster() -> Cluster {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b, &Placement::HashSalted(2)).unwrap();
    cluster
}

fn query() -> JoinQuery {
    JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001)
}

#[test]
fn hash_skew_join_is_identical_across_thread_counts() {
    let cluster = skewed_cluster();
    let query = query();

    let run = |threads: usize| {
        let config = ExecConfig {
            planner: PlannerKind::Tabu,
            forced_algo: Some(JoinAlgo::Hash),
            hash_buckets: Some(64),
            threads,
            ..ExecConfig::default()
        };
        execute_shuffle_join(&cluster, &query, &config).unwrap()
    };

    let (ref_out, ref_metrics) = run(1);
    assert!(ref_metrics.matches > 0, "fixture must produce matches");
    let ref_cells: Vec<_> = ref_out.iter_cells().collect();

    for threads in [2usize, 8] {
        let (out, metrics) = run(threads);
        let cells: Vec<_> = out.iter_cells().collect();
        assert_eq!(
            cells, ref_cells,
            "output cells differ between threads=1 and threads={threads}"
        );
        assert_eq!(metrics.matches, ref_metrics.matches);
        assert_eq!(metrics.cells_moved, ref_metrics.cells_moved);
        assert_eq!(
            metrics.shuffle, ref_metrics.shuffle,
            "shuffle transfer totals differ at threads={threads}"
        );
        assert_eq!(metrics.network_bytes, ref_metrics.network_bytes);
    }
}

#[test]
fn merge_join_and_auto_planning_are_thread_invariant() {
    // Exercise the other unit kind (chunk ranges / merge join) and let the
    // logical planner choose the algorithm, so both slice-mapping paths
    // and the histogram statistics are covered.
    let cluster = skewed_cluster();
    let query = query();

    let run = |threads: usize| {
        let config = ExecConfig {
            planner: PlannerKind::MinBandwidth,
            forced_algo: Some(JoinAlgo::Merge),
            threads,
            ..ExecConfig::default()
        };
        execute_shuffle_join(&cluster, &query, &config).unwrap()
    };

    let (ref_out, ref_metrics) = run(1);
    let ref_cells: Vec<_> = ref_out.iter_cells().collect();
    for threads in [2usize, 8] {
        let (out, metrics) = run(threads);
        assert_eq!(out.iter_cells().collect::<Vec<_>>(), ref_cells);
        assert_eq!(metrics.matches, ref_metrics.matches);
        assert_eq!(metrics.shuffle, ref_metrics.shuffle);
    }
}

#[test]
fn profile_reports_resolved_threads_and_phase_times() {
    let cluster = skewed_cluster();
    let (_, metrics) = execute_shuffle_join(
        &cluster,
        &query(),
        &ExecConfig {
            forced_algo: Some(JoinAlgo::Hash),
            hash_buckets: Some(64),
            threads: 2,
            ..ExecConfig::default()
        },
    )
    .unwrap();
    let p = &metrics.profile;
    assert_eq!(p.threads, 2);
    assert!(p.comparison_wall_seconds > 0.0);
    assert!(p.slice_map_wall_seconds > 0.0);
    assert!(!p.comparison_busy_seconds.is_empty());
    assert!(p.comparison_busy_seconds.len() <= 2);
}
