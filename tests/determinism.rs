//! Thread-count determinism of the parallel executor.
//!
//! The executor's contract: `ExecConfig.threads` changes wall-clock time
//! only, never results. This runs the Figure-8-style hash-skew join on a
//! 4-node cluster with 1, 2, and 8 worker threads and asserts the
//! gathered output arrays, match counts, and shuffle transfer totals are
//! identical — cell for cell, in order, with no sorting applied before
//! comparison.

use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::{execute_join, ExecConfig, JoinQuery};
use sj_core::{JoinAlgo, JoinPredicate, MetricsView, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

fn skewed_cluster() -> Cluster {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b, &Placement::HashSalted(2)).unwrap();
    cluster
}

fn query() -> JoinQuery {
    JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001)
}

#[test]
fn hash_skew_join_is_identical_across_thread_counts() {
    let cluster = skewed_cluster();
    let query = query();

    let run = |threads: usize| {
        let config = ExecConfig::builder()
            .planner(PlannerKind::Tabu)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(64)
            .threads(threads)
            .build()
            .unwrap();
        execute_join(&cluster, &query, &config).unwrap()
    };

    let ref_run = run(1);
    let ref_metrics = ref_run.telemetry.join_metrics().unwrap();
    assert!(ref_metrics.matches > 0, "fixture must produce matches");
    let ref_cells: Vec<_> = ref_run.array.iter_cells().collect();
    let ref_structure = ref_run.telemetry.structure_signature();

    for threads in [2usize, 8] {
        let thr_run = run(threads);
        let metrics = thr_run.telemetry.join_metrics().unwrap();
        let cells: Vec<_> = thr_run.array.iter_cells().collect();
        assert_eq!(
            cells, ref_cells,
            "output cells differ between threads=1 and threads={threads}"
        );
        assert_eq!(metrics.matches, ref_metrics.matches);
        assert_eq!(metrics.cells_moved, ref_metrics.cells_moved);
        assert_eq!(
            metrics.shuffle, ref_metrics.shuffle,
            "shuffle transfer totals differ at threads={threads}"
        );
        assert_eq!(metrics.network_bytes, ref_metrics.network_bytes);
        // The span tree's shape is part of the determinism contract:
        // worker parallelism must not change which spans exist or their
        // order, only the timing numbers inside them.
        assert_eq!(
            thr_run.telemetry.structure_signature(),
            ref_structure,
            "span structure differs at threads={threads}"
        );
    }
}

#[test]
fn merge_join_and_auto_planning_are_thread_invariant() {
    // Exercise the other unit kind (chunk ranges / merge join) and let the
    // logical planner choose the algorithm, so both slice-mapping paths
    // and the histogram statistics are covered.
    let cluster = skewed_cluster();
    let query = query();

    let run = |threads: usize| {
        let config = ExecConfig::builder()
            .planner(PlannerKind::MinBandwidth)
            .forced_algo(JoinAlgo::Merge)
            .threads(threads)
            .build()
            .unwrap();
        execute_join(&cluster, &query, &config).unwrap()
    };

    let ref_run = run(1);
    let ref_metrics = ref_run.telemetry.join_metrics().unwrap();
    let ref_cells: Vec<_> = ref_run.array.iter_cells().collect();
    for threads in [2usize, 8] {
        let thr_run = run(threads);
        let metrics = thr_run.telemetry.join_metrics().unwrap();
        assert_eq!(thr_run.array.iter_cells().collect::<Vec<_>>(), ref_cells);
        assert_eq!(metrics.matches, ref_metrics.matches);
        assert_eq!(metrics.shuffle, ref_metrics.shuffle);
        assert_eq!(
            thr_run.telemetry.structure_signature(),
            ref_run.telemetry.structure_signature()
        );
    }
}

#[test]
fn profile_reports_resolved_threads_and_phase_times() {
    let cluster = skewed_cluster();
    let config = ExecConfig::builder()
        .forced_algo(JoinAlgo::Hash)
        .hash_buckets(64)
        .threads(2)
        .build()
        .unwrap();
    let run = execute_join(&cluster, &query(), &config).unwrap();
    let metrics = run.telemetry.join_metrics().unwrap();
    let p = &metrics.profile;
    assert_eq!(p.threads, 2);
    assert!(p.comparison_wall_seconds > 0.0);
    assert!(p.slice_map_wall_seconds > 0.0);
    assert!(!p.comparison_busy_seconds.is_empty());
    assert!(p.comparison_busy_seconds.len() <= 2);
}

// ---------------------------------------------------------------------
// Kernel-vs-legacy bit identity on the determinism fixture
// ---------------------------------------------------------------------
//
// The executor above rides the normalized-key kernels (radix sorts, the
// columnar bucket-chain hash join). Their legacy counterparts are kept
// callable; these tests pin, on the same skewed fixture data the
// thread-count tests use, that each kernel is bit-identical to the path
// it replaced — so the thread-invariance assertions above transitively
// cover the legacy semantics too.

use sj_array::{Histogram, Value};
use sj_core::algorithms::{hash_join, hash_join_rowwise, Emitter};
use sj_core::join_schema::{infer_join_schema, ColumnStats};
use sj_core::predicate::JoinSide;

#[test]
fn radix_chunk_sorts_are_bit_identical_to_comparator_on_fixture() {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut chunks = 0usize;
    for array in [&a, &b] {
        for (_, chunk) in array.chunks() {
            // Un-sort a copy so the sorts have real work to do.
            let mut radix = chunk.cells.clone();
            let n = radix.len();
            radix.apply_permutation(&(0..n).rev().collect::<Vec<_>>());
            let mut comparator = radix.clone();
            radix.sort_c_order();
            comparator.sort_c_order_comparator();
            assert_eq!(radix, comparator, "C-order sort diverged from legacy");
            // Key-order sort on the dimension-less layout (value columns).
            let mut radix = chunk.cells.clone();
            radix.apply_permutation(&(0..n).rev().collect::<Vec<_>>());
            let mut comparator = radix.clone();
            radix.sort_by_attr_columns(&[0, 1]);
            comparator.sort_by_attr_columns_comparator(&[0, 1]);
            assert_eq!(radix, comparator, "attr sort diverged from legacy");
            chunks += 1;
        }
    }
    assert!(chunks > 8, "fixture should spread over many chunks");
}

#[test]
fn columnar_hash_join_is_bit_identical_to_rowwise_on_fixture() {
    // The exact executor-fixture arrays, joined whole (one unit) so the
    // two algorithm implementations can be compared emission-for-emission.
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let p = sj_core::JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]);
    let mut stats = ColumnStats::new();
    for (side, array) in [(JoinSide::Left, &a), (JoinSide::Right, &b)] {
        for attr in ["v1", "v2"] {
            let idx = array
                .schema
                .attrs
                .iter()
                .position(|d| d.name == attr)
                .unwrap();
            let hist =
                Histogram::build(array.iter_cells().map(|(_, vs)| vs[idx].clone()), 16).unwrap();
            stats.insert(side, attr, hist);
        }
    }
    let js = infer_join_schema(&a.schema, &b.schema, &p, None, &stats).unwrap();

    // Flatten both sides into the dimension-less join-unit layout
    // (dims materialized first, then attributes).
    let flatten = |array: &sj_array::Array| {
        let ndims = array.schema.ndims();
        let mut types: Vec<sj_array::DataType> = vec![sj_array::DataType::Int64; ndims];
        types.extend(array.schema.attrs.iter().map(|d| d.dtype));
        let mut flat = sj_array::CellBatch::new(0, &types);
        let mut row: Vec<Value> = Vec::new();
        for (coords, values) in array.iter_cells() {
            row.clear();
            row.extend(coords.iter().map(|&c| Value::Int(c)));
            row.extend(values);
            flat.push(&[], &row).unwrap();
        }
        flat
    };
    let (l, r) = (flatten(&a), flatten(&b));
    let keys = [a.schema.ndims(), a.schema.ndims() + 1];

    let mut em_new = Emitter::new(&js);
    let n_new = hash_join(&l, &keys, &r, &keys, &mut em_new).unwrap();
    let mut em_old = Emitter::new(&js);
    let n_old = hash_join_rowwise(&l, &keys, &r, &keys, &mut em_old).unwrap();
    assert!(n_new > 0, "fixture must produce matches");
    assert_eq!(n_new, n_old);
    // Emission order included — not just the match multiset.
    assert_eq!(em_new.out, em_old.out);
}

#[test]
fn dispatched_sorts_are_bit_identical_to_every_forced_kernel() {
    // Sizes straddle RADIX_MIN_ROWS (32) and, on the narrow domain,
    // the counting-sort table<=rows guard; the wide domain keeps radix
    // territory. Every forced config — parallel included at threads
    // 2 and 8 — must reproduce the comparator order bit for bit.
    use sj_array::keys::{KernelConfig, SortKernel};
    use sj_array::{CellBatch, DataType};
    let mk = |n: usize, domain: i64, seed: u64| -> CellBatch {
        let mut x = seed | 1;
        let mut b = CellBatch::new(1, &[DataType::Int64]);
        for row in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let c = ((x >> 33) as i64).rem_euclid(domain);
            b.push(&[c], &[Value::Int(row as i64)]).unwrap();
        }
        b
    };
    let forced = [
        KernelConfig::radix_only(),
        KernelConfig {
            radix_min_rows: 0,
            counting_max_bits: 26,
            parallel_min_rows: usize::MAX,
            threads: 1,
        },
        KernelConfig {
            parallel_min_rows: 0,
            threads: 2,
            ..KernelConfig::default()
        },
        KernelConfig {
            parallel_min_rows: 0,
            threads: 8,
            ..KernelConfig::default()
        },
    ];
    for n in [0usize, 1, 8, 31, 32, 33, 100, 700, 5_000] {
        for domain in [50i64, 4_000_000_000] {
            let pristine = mk(n, domain, 0x5EED ^ n as u64);
            let mut comparator = pristine.clone();
            comparator.sort_c_order_comparator();
            let mut dispatched = pristine.clone();
            dispatched.sort_c_order();
            assert_eq!(
                dispatched, comparator,
                "dispatched sort diverged at n={n} domain={domain}"
            );
            for cfg in &forced {
                let mut b = pristine.clone();
                b.sort_c_order_with(cfg);
                assert_eq!(
                    b, comparator,
                    "forced config {cfg:?} diverged at n={n} domain={domain}"
                );
            }
        }
    }
    // Pin the dispatch decisions at the threshold edges.
    let pick = |n: usize, domain: i64| {
        let mut b = mk(n, domain, 1);
        b.sort_c_order_with(&KernelConfig::default())
    };
    assert_eq!(pick(31, 4_000_000_000), SortKernel::Comparator);
    assert_eq!(pick(33, 4_000_000_000), SortKernel::RadixU64);
    assert_eq!(pick(700, 50), SortKernel::Counting);
    assert_eq!(
        pick(33, 50),
        SortKernel::RadixU64,
        "table > rows: no counting"
    );
}

#[test]
fn executor_results_are_invariant_to_kernel_config() {
    // The executor's dispatch knobs — forced comparator, forced radix,
    // counting-eager, parallel-eager with spare worker threads — may
    // change only wall-clock time, never the output array or metrics.
    use sj_array::keys::KernelConfig;
    let cluster = skewed_cluster();
    let query = query();
    let run = |kernels: KernelConfig, threads: usize| {
        let config = ExecConfig::builder()
            .planner(PlannerKind::Tabu)
            .forced_algo(JoinAlgo::Merge)
            .threads(threads)
            .kernels(kernels)
            .build()
            .unwrap();
        execute_join(&cluster, &query, &config).unwrap()
    };
    let reference = run(KernelConfig::default(), 1);
    let ref_cells: Vec<_> = reference.array.iter_cells().collect();
    let ref_matches = reference.telemetry.join_metrics().unwrap().matches;
    assert!(ref_matches > 0, "fixture must produce matches");
    let configs = [
        // Comparator-only: dispatch always falls through.
        (
            KernelConfig {
                radix_min_rows: usize::MAX,
                ..KernelConfig::default()
            },
            1,
        ),
        (KernelConfig::radix_only(), 1),
        // Counting-eager on the narrow value domain.
        (
            KernelConfig {
                radix_min_rows: 0,
                counting_max_bits: 26,
                parallel_min_rows: usize::MAX,
                threads: 1,
            },
            1,
        ),
        // Parallel-eager: every sort/probe splits across the intra-unit
        // budget (threads=8 over few units leaves spare workers).
        (
            KernelConfig {
                parallel_min_rows: 0,
                ..KernelConfig::default()
            },
            8,
        ),
    ];
    for (kernels, threads) in configs {
        let alt = run(kernels.clone(), threads);
        assert_eq!(
            alt.array.iter_cells().collect::<Vec<_>>(),
            ref_cells,
            "output differs under kernel config {kernels:?} threads={threads}"
        );
        assert_eq!(
            alt.telemetry.join_metrics().unwrap().matches,
            ref_matches,
            "match count differs under kernel config {kernels:?}"
        );
    }
}

#[test]
fn signed_zero_hash_join_matches_rowwise() {
    // -0.0 and 0.0 compare equal but have different bit patterns; the
    // columnar hash join must bucket them together exactly like the
    // row-wise path does.
    use sj_array::{ArraySchema, CellBatch, DataType};
    let mk = |rows: &[(i64, f64)]| {
        let mut c = CellBatch::new(0, &[DataType::Int64, DataType::Float64]);
        for &(i, v) in rows {
            c.push(&[], &[Value::Int(i), Value::Float(v)]).unwrap();
        }
        c
    };
    let a = ArraySchema::parse("A<v:float>[i=1,100,10]").unwrap();
    let b = ArraySchema::parse("B<w:float>[j=1,100,10]").unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    stats.insert(
        JoinSide::Left,
        "v",
        Histogram::build((1..=10).map(Value::Int), 4).unwrap(),
    );
    let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
    let l = mk(&[(1, -0.0)]);
    let r = mk(&[(2, 0.0), (3, -0.0)]);
    let mut em_new = Emitter::new(&js);
    let mut em_old = Emitter::new(&js);
    let n_new = hash_join(&l, &[1], &r, &[1], &mut em_new).unwrap();
    let n_old = hash_join_rowwise(&l, &[1], &r, &[1], &mut em_old).unwrap();
    assert_eq!(
        n_new, n_old,
        "columnar hash join diverges from rowwise on signed zeros"
    );
}
