//! Property-based tests over the core invariants, via proptest.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::HashMap;

use skewjoin::array::ops::{redim, RedimPolicy};
use skewjoin::array::Histogram;
use skewjoin::cluster::{simulate_shuffle, NetworkModel, Transfer};
use skewjoin::join::algorithms::{run_join, Emitter, JoinAlgo};
use skewjoin::join::join_schema::{infer_join_schema, ColumnStats};
use skewjoin::join::physical::{plan_cost, plan_physical, CostParams, PlannerKind, SliceStats};
use skewjoin::join::predicate::{JoinPredicate, JoinSide};
use skewjoin::{Array, ArraySchema, CellBatch, DataType, Value};

// ---------------------------------------------------------------------
// Array engine invariants
// ---------------------------------------------------------------------

proptest! {
    /// Sorting a batch into C-order is a permutation: same multiset of
    /// cells, ordered afterwards, idempotent.
    #[test]
    fn sort_c_order_is_permutation(cells in proptest::collection::vec((0i64..20, 0i64..20, any::<i32>()), 0..200)) {
        let mut batch = CellBatch::new(2, &[DataType::Int64]);
        for (i, j, v) in &cells {
            batch.push(&[*i, *j], &[Value::Int(*v as i64)]).unwrap();
        }
        let mut sorted = batch.clone();
        sorted.sort_c_order();
        prop_assert!(sorted.is_sorted_c_order());
        prop_assert_eq!(sorted.len(), batch.len());
        let mut a: Vec<_> = batch.iter_cells().collect();
        let mut b: Vec<_> = sorted.iter_cells().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        let snapshot = sorted.clone();
        sorted.sort_c_order();
        prop_assert_eq!(sorted, snapshot);
    }

    /// from_batch and per-cell insertion build identical arrays.
    #[test]
    fn bulk_load_equals_incremental(cells in proptest::collection::vec((1i64..=64, any::<i16>()), 1..150)) {
        let schema = ArraySchema::parse("P<v:int>[i=1,64,16]").unwrap();
        let mut batch = CellBatch::new(1, &[DataType::Int64]);
        let mut incremental = Array::new(schema.clone());
        for (i, v) in &cells {
            batch.push(&[*i], &[Value::Int(*v as i64)]).unwrap();
            incremental.insert(&[*i], &[Value::Int(*v as i64)]).unwrap();
        }
        let mut bulk = Array::from_batch(schema, &batch).unwrap();
        bulk.sort_chunks();
        incremental.sort_chunks();
        let mut x: Vec<_> = bulk.iter_cells().collect();
        let mut y: Vec<_> = incremental.iter_cells().collect();
        x.sort();
        y.sort();
        prop_assert_eq!(x, y);
        prop_assert_eq!(bulk.chunk_count(), incremental.chunk_count());
    }

    /// redim to a schema with the same columns preserves every cell.
    #[test]
    fn redim_preserves_cells(cells in proptest::collection::vec((1i64..=32, 1i64..=32), 1..100)) {
        let mut dedup = cells.clone();
        dedup.sort();
        dedup.dedup();
        let schema = ArraySchema::parse("R<v:int>[i=1,32,8]").unwrap();
        let array = Array::from_cells(
            schema,
            dedup.iter().map(|(i, v)| (vec![*i], vec![Value::Int(*v)])),
        ).unwrap();
        // Swap roles: v becomes the dimension, i the attribute.
        let target = ArraySchema::parse("R2<i:int>[v=1,32,4]").unwrap();
        let out = redim(&array, &target, RedimPolicy::Strict).unwrap();
        prop_assert_eq!(out.cell_count(), array.cell_count());
        prop_assert!(out.all_sorted());
        // Round-trip back.
        let back = redim(&out, &array.schema, RedimPolicy::Strict).unwrap();
        let mut x: Vec<_> = back.iter_cells().collect();
        let mut y: Vec<_> = array.iter_cells().collect();
        x.sort();
        y.sort();
        prop_assert_eq!(x, y);
    }
}

// ---------------------------------------------------------------------
// Join algorithm equivalence
// ---------------------------------------------------------------------

fn join_fixture() -> skewjoin::join::JoinSchema {
    let a = ArraySchema::parse("A<v:int>[i=1,1000,100]").unwrap();
    let b = ArraySchema::parse("B<w:int>[j=1,1000,100]").unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    for (side, col) in [(JoinSide::Left, "v"), (JoinSide::Right, "w")] {
        stats.insert(
            side,
            col,
            Histogram::build((0..50).map(Value::Int), 8).unwrap(),
        );
    }
    infer_join_schema(&a, &b, &p, None, &stats).unwrap()
}

proptest! {
    /// Hash, merge, and nested-loop joins agree with each other and with
    /// a brute-force count on arbitrary inputs.
    #[test]
    fn all_join_algorithms_agree(
        left in proptest::collection::vec((1i64..=1000, 0i64..30), 0..120),
        right in proptest::collection::vec((1i64..=1000, 0i64..30), 0..120),
    ) {
        let js = join_fixture();
        let build = |rows: &[(i64, i64)]| {
            let mut b = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
            for (i, v) in rows {
                b.push(&[], &[Value::Int(*i), Value::Int(*v)]).unwrap();
            }
            b
        };
        // Brute-force expected match count.
        let mut freq: HashMap<i64, usize> = HashMap::new();
        for (_, v) in &left {
            *freq.entry(*v).or_insert(0) += 1;
        }
        let expected: usize = right.iter().map(|(_, w)| freq.get(w).copied().unwrap_or(0)).sum();

        let mut results = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let mut l = build(&left);
            let mut r = build(&right);
            let mut em = Emitter::new(&js);
            let n = run_join(algo, &mut l, &[1], &mut r, &[1], &mut em).unwrap();
            prop_assert_eq!(n, em.len());
            let mut cells: Vec<_> = em.out.iter_cells().collect();
            cells.sort();
            results.push((n, cells));
        }
        prop_assert_eq!(results[0].0, expected);
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }
}

// ---------------------------------------------------------------------
// Shuffle simulation invariants
// ---------------------------------------------------------------------

proptest! {
    /// The DES makespan is sandwiched between the per-link lower bound
    /// (busiest sender/receiver) and the fully-serial upper bound.
    #[test]
    fn shuffle_makespan_bounds(
        transfers in proptest::collection::vec((0usize..4, 0usize..4, 1u64..10_000), 0..60),
    ) {
        let net = NetworkModel { bandwidth_bytes_per_sec: 1000.0, latency_sec: 0.0 };
        let ts: Vec<Transfer> = transfers
            .iter()
            .map(|&(src, dst, bytes)| Transfer { src, dst, bytes })
            .collect();
        let report = simulate_shuffle(4, &net, &ts).unwrap();
        let lower = report
            .sent_bytes
            .iter()
            .chain(&report.recv_bytes)
            .map(|&b| b as f64 / 1000.0)
            .fold(0.0f64, f64::max);
        let serial: f64 = report.network_bytes as f64 / 1000.0;
        prop_assert!(report.makespan >= lower - 1e-9, "makespan {} < lower bound {}", report.makespan, lower);
        prop_assert!(report.makespan <= serial + 1e-9, "makespan {} > serial bound {}", report.makespan, serial);
        let sent: u64 = report.sent_bytes.iter().sum();
        let recv: u64 = report.recv_bytes.iter().sum();
        prop_assert_eq!(sent, report.network_bytes);
        prop_assert_eq!(recv, report.network_bytes);
    }
}

// ---------------------------------------------------------------------
// Physical planner invariants
// ---------------------------------------------------------------------

fn stats_strategy() -> impl Strategy<Value = SliceStats> {
    (2usize..=12, 2usize..=4).prop_flat_map(|(units, nodes)| {
        proptest::collection::vec(0u64..500, units * nodes * 2).prop_map(move |vals| {
            let mut s = SliceStats::new(units, nodes);
            let mut it = vals.into_iter();
            for i in 0..units {
                for j in 0..nodes {
                    s.left[i][j] = it.next().unwrap();
                    s.right[i][j] = it.next().unwrap();
                }
            }
            s
        })
    })
}

proptest! {
    /// Every planner returns a complete, in-range assignment, and Tabu
    /// never costs more than the MinBandwidth plan it starts from.
    #[test]
    fn planners_produce_valid_assignments(stats in stats_strategy()) {
        let params = CostParams { m: 1.0, b: 2.0, p: 1.0, t: 1.5 };
        let mut costs = HashMap::new();
        for kind in [PlannerKind::Baseline, PlannerKind::MinBandwidth, PlannerKind::Tabu] {
            let plan = plan_physical(&kind, &stats, &params, JoinAlgo::Hash, JoinSide::Left).unwrap();
            prop_assert_eq!(plan.assignment.len(), stats.n_units());
            prop_assert!(plan.assignment.iter().all(|&j| j < stats.nodes()));
            // The reported cost matches an independent recomputation.
            let recomputed = plan_cost(&stats, &params, JoinAlgo::Hash, &plan.assignment).unwrap();
            prop_assert!((plan.est_cost - recomputed).abs() < 1e-9);
            costs.insert(plan.planner, plan.est_cost);
        }
        prop_assert!(costs["Tabu"] <= costs["MBH"] + 1e-9,
            "tabu ({}) regressed below its MBH seed ({})", costs["Tabu"], costs["MBH"]);
    }

    /// MBH provably minimizes transmitted cells over all assignments
    /// (checked exhaustively on small instances).
    #[test]
    fn mbh_minimizes_transfer(stats in stats_strategy().prop_filter("small", |s| s.n_units() <= 6 && s.nodes() <= 3)) {
        let params = CostParams { m: 1.0, b: 2.0, p: 1.0, t: 1.5 };
        let plan = plan_physical(&PlannerKind::MinBandwidth, &stats, &params, JoinAlgo::Merge, JoinSide::Left).unwrap();
        let moved = |asg: &[usize]| -> u64 {
            (0..stats.n_units()).map(|i| stats.unit_total(i) - stats.s(i, asg[i])).sum()
        };
        let mbh_moved = moved(&plan.assignment);
        let k = stats.nodes();
        let n = stats.n_units();
        let total = k.pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let asg: Vec<usize> = (0..n).map(|_| { let j = c % k; c /= k; j }).collect();
            prop_assert!(moved(&asg) >= mbh_moved);
        }
    }
}

// ---------------------------------------------------------------------
// Normalized-key kernel invariants
// ---------------------------------------------------------------------

use skewjoin::array::keys::{encode_f64, encode_i64, encode_rows_u64};
use skewjoin::array::keys::{radix_sort_by_attr_columns, radix_sort_c_order};

/// Integer keys biased toward boundaries and a tiny tie-heavy domain.
fn key_i64() -> impl Strategy<Value = i64> {
    (0u8..8, any::<i64>()).prop_map(|(sel, raw)| match sel {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => 0,
        3 => -1,
        4 => raw,
        _ => raw % 5,
    })
}

/// Float keys covering NaN, infinities, signed zero, and ties.
fn key_f64() -> impl Strategy<Value = f64> {
    (0u8..8, any::<f64>()).prop_map(|(sel, raw)| match sel {
        0 => f64::NAN,
        1 => f64::NEG_INFINITY,
        2 => f64::INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => raw,
        _ => ((raw.to_bits() % 7) as f64 - 3.0) * 0.5,
    })
}

/// Batch equality with float columns compared by bit pattern (derived
/// `PartialEq` fails on NaN even for identical batches).
fn assert_bit_identical(
    a: &CellBatch,
    b: &CellBatch,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(&a.coords, &b.coords);
    prop_assert_eq!(a.nattrs(), b.nattrs());
    for (ca, cb) in a.attrs.iter().zip(&b.attrs) {
        match (ca, cb) {
            (skewjoin::array::Column::Float(x), skewjoin::array::Column::Float(y)) => {
                let xb: Vec<u64> = x.iter().map(|f| f.to_bits()).collect();
                let yb: Vec<u64> = y.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(xb, yb);
            }
            _ => prop_assert_eq!(ca, cb),
        }
    }
    Ok(())
}

proptest! {
    /// The i64 key encoding is order-preserving across the whole domain,
    /// including i64::MIN/MAX and ties.
    #[test]
    fn encode_i64_preserves_order(a in key_i64(), b in key_i64()) {
        prop_assert_eq!(encode_i64(a).cmp(&encode_i64(b)), a.cmp(&b));
    }

    /// The f64 key encoding realizes IEEE totalOrder — the comparator
    /// the column sorts use — NaNs and signed zeros included.
    #[test]
    fn encode_f64_preserves_total_order(a in key_f64(), b in key_f64()) {
        prop_assert_eq!(encode_f64(a).cmp(&encode_f64(b)), a.total_cmp(&b));
    }

    /// The radix C-order sort is bit-identical to the comparator sort on
    /// arbitrary coordinate batches: same order, same tie-breaking.
    #[test]
    fn radix_c_order_equals_comparator(
        cells in proptest::collection::vec((key_i64(), key_i64()), 0..200),
    ) {
        let mut radix = CellBatch::new(2, &[DataType::Int64]);
        for (n, (i, j)) in cells.iter().enumerate() {
            radix.push(&[*i, *j], &[Value::Int(n as i64)]).unwrap();
        }
        let mut comparator = radix.clone();
        prop_assert!(radix_sort_c_order(&mut radix));
        comparator.sort_c_order_comparator();
        // The payload column pins the permutation: stability included.
        prop_assert_eq!(&radix, &comparator);
        prop_assert!(radix.is_sorted_c_order());
    }

    /// The radix attribute sort is bit-identical to the comparator sort
    /// over mixed int/float/bool keys, for every key-column order.
    #[test]
    fn radix_attr_sort_equals_comparator(
        rows in proptest::collection::vec((key_i64(), key_f64(), any::<bool>()), 0..150),
    ) {
        for cols in [vec![0usize], vec![1], vec![2], vec![1, 0], vec![2, 1, 0]] {
            let mut radix = CellBatch::new(
                0,
                &[DataType::Int64, DataType::Float64, DataType::Bool, DataType::Int64],
            );
            for (n, (i, f, x)) in rows.iter().enumerate() {
                radix
                    .push(&[], &[Value::Int(*i), Value::Float(*f), Value::Bool(*x), Value::Int(n as i64)])
                    .unwrap();
            }
            let mut comparator = radix.clone();
            prop_assert!(radix_sort_by_attr_columns(&mut radix, &cols));
            comparator.sort_by_attr_columns_comparator(&cols);
            assert_bit_identical(&radix, &comparator)?;
            prop_assert!(radix.is_sorted_by_attr_columns(&cols));
        }
    }

    /// Dispatch is invisible in results: the dispatched entry point and
    /// every forced kernel config — thresholds drawn to straddle the
    /// input size, threads 1..8 so the parallel MSB kernel comes up —
    /// produce batches bit-identical to the comparator sort, for single
    /// u64-path keys, float keys, and wide multi-column keys alike.
    #[test]
    fn dispatched_sort_is_bit_identical_for_every_kernel_config(
        rows in proptest::collection::vec((key_i64(), key_f64()), 0..250),
        radix_min in 0usize..64,
        counting_bits in 0u32..20,
        parallel_min in 0usize..512,
        threads in 1usize..9,
    ) {
        use skewjoin::array::keys::KernelConfig;
        let mut pristine = CellBatch::new(
            0,
            &[DataType::Int64, DataType::Float64, DataType::Int64],
        );
        for (n, (i, f)) in rows.iter().enumerate() {
            pristine
                .push(&[], &[Value::Int(*i), Value::Float(*f), Value::Int(n as i64)])
                .unwrap();
        }
        let cfg = KernelConfig {
            radix_min_rows: radix_min,
            counting_max_bits: counting_bits,
            parallel_min_rows: parallel_min,
            threads,
        };
        for cols in [vec![0usize], vec![1], vec![0, 1]] {
            let mut comparator = pristine.clone();
            comparator.sort_by_attr_columns_comparator(&cols);
            let mut dispatched = pristine.clone();
            dispatched.sort_by_attr_columns(&cols);
            assert_bit_identical(&dispatched, &comparator)?;
            let mut forced = pristine.clone();
            forced.sort_by_attr_columns_with(&cols, &cfg);
            assert_bit_identical(&forced, &comparator)?;
        }
    }

    /// The merge join's uncompressed u64 keys order rows exactly like
    /// the column comparator, ties included.
    #[test]
    fn encode_rows_u64_matches_column_comparator(
        ints in proptest::collection::vec(key_i64(), 0..100),
        floats in proptest::collection::vec(key_f64(), 0..100),
    ) {
        let mut bi = CellBatch::new(0, &[DataType::Int64]);
        for i in &ints {
            bi.push(&[], &[Value::Int(*i)]).unwrap();
        }
        let keys = encode_rows_u64(&bi, &[0]).unwrap();
        for a in 0..bi.len() {
            for b in 0..bi.len() {
                prop_assert_eq!(keys[a].cmp(&keys[b]), bi.cmp_by_attr_columns(&[0], a, b));
            }
        }
        let mut bf = CellBatch::new(0, &[DataType::Float64]);
        for f in &floats {
            bf.push(&[], &[Value::Float(*f)]).unwrap();
        }
        let keys = encode_rows_u64(&bf, &[0]).unwrap();
        for a in 0..bf.len() {
            for b in 0..bf.len() {
                prop_assert_eq!(keys[a].cmp(&keys[b]), bf.cmp_by_attr_columns(&[0], a, b));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Query-lifecycle invariants
// ---------------------------------------------------------------------

use std::sync::OnceLock;

use skewjoin::cluster::Cluster;
use skewjoin::join::exec::{execute_join, ExecConfig, JoinQuery};
use skewjoin::join::{JoinError, MetricsView};
use skewjoin::workload::{skewed_pair, SkewedArrayConfig};
use skewjoin::CancelHandle;

/// A small 4-node skewed-join fixture shared across proptest cases (the
/// cluster is immutable; every query reads it).
fn lifecycle_cluster() -> &'static Cluster {
    static CLUSTER: OnceLock<Cluster> = OnceLock::new();
    CLUSTER.get_or_init(|| {
        let cfg = SkewedArrayConfig {
            name: String::new(),
            grid: 16,
            chunk_interval: 64,
            cells: 8_000,
            spatial_alpha: 0.0,
            value_alpha: 1.5,
            value_domain: 4_000,
            seed: 7,
        };
        let (a, b) = skewed_pair(&cfg);
        let mut cluster = Cluster::new(4, skewjoin::cluster::NetworkModel::gigabit());
        cluster
            .load_array(a, &skewjoin::Placement::HashSalted(1))
            .unwrap();
        cluster
            .load_array(b, &skewjoin::Placement::HashSalted(2))
            .unwrap();
        cluster
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A cancellation injected at an *arbitrary* cooperative checkpoint
    /// either lands before the query finishes (typed `Cancelled` error,
    /// no panic, no poisoned state) or the query completes with the
    /// exact uncancelled answer. Either way the same handle, reset,
    /// immediately runs a follow-up query to completion — the pool
    /// drained cleanly.
    #[test]
    fn injected_cancellation_unwinds_cleanly(fuse in 0u64..400, threads in 1usize..9) {
        let cluster = lifecycle_cluster();
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("v1", "v1")]),
        );
        let handle = CancelHandle::new();
        let config = ExecConfig::builder()
            .threads(threads)
            .cancel(handle.clone())
            .build()
            .unwrap();
        let reference = ExecConfig::builder().threads(threads).build().unwrap();
        let expected = execute_join(cluster, &query, &reference).unwrap();
        let expected_cells: Vec<_> = expected.array.iter_cells().collect();

        handle.cancel_after(fuse);
        match execute_join(cluster, &query, &config) {
            Ok(run) => {
                // Fuse outlived the query: the answer must be untouched.
                prop_assert_eq!(run.array.iter_cells().collect::<Vec<_>>(), expected_cells.clone());
            }
            Err(e) => prop_assert!(
                matches!(e, JoinError::Cancelled),
                "injected cancel must surface as Cancelled, got {:?}", e
            ),
        }

        // The same handle, reset, runs a follow-up query to completion.
        handle.reset();
        let rerun = execute_join(cluster, &query, &config);
        prop_assert!(rerun.is_ok(), "follow-up query after reset failed: {:?}", rerun.err());
        let rerun = rerun.unwrap();
        prop_assert_eq!(rerun.array.iter_cells().collect::<Vec<_>>(), expected_cells);
        prop_assert!(rerun.telemetry.join_metrics().unwrap().matches > 0, "fixture must produce matches");
    }
}
