//! Golden-equivalence suite for n-way join ordering.
//!
//! The Selinger DP is only allowed to change *wall-clock*, never a
//! cell: every join tree over the same join graph must produce the same
//! array. This suite builds 3- and 4-way join graphs over randomized
//! arrays, executes the DP-chosen plan and **every** connected left-deep
//! order, and compares the results bit for bit — without sorting before
//! comparison — at `ExecConfig.threads` = 1, 2, and 8.
//!
//! A second section drives the optimizer itself with randomized
//! connected graphs and synthetic statistics: the DP must always return
//! a plan, the plan must always be emittable (which proves no chosen
//! split is a cross product — `tree_for_plan` refuses edge-less
//! partitions), and the left-deep enumeration must stay connected.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeMap;

use skewjoin::join::exec::ExecConfig;
use skewjoin::join::optimizer::{JoinGraph, OptimizerMode, RelEstimate};
use skewjoin::join::plan::PlanNode;
use skewjoin::join::run_plan;
use skewjoin::{Array, ArrayDb, ArraySchema, NetworkModel, Value};

const THREADS: [usize; 3] = [1, 2, 8];

/// Random single-attribute 1-D cells, deduplicated by coordinate.
fn build_1d(name: &str, attr: &str, cells: &[(i64, i64)]) -> Array {
    let schema = ArraySchema::parse(&format!("{name}<{attr}:int>[i=1,12,4]")).unwrap();
    let dedup: BTreeMap<i64, i64> = cells.iter().copied().collect();
    Array::from_cells(
        schema,
        dedup
            .into_iter()
            .map(|(i, v)| (vec![i], vec![Value::Int(v)])),
    )
    .unwrap()
}

fn scan(name: &str) -> PlanNode {
    PlanNode::Scan {
        array: name.to_string(),
    }
}

fn join(left: PlanNode, right: PlanNode, pairs: &[(&str, &str)]) -> PlanNode {
    PlanNode::Join {
        left: Box::new(left),
        right: Box::new(right),
        pairs: pairs
            .iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect(),
        output: None,
    }
}

/// Execute `plan` at every thread count, asserting all runs agree, and
/// return the (shared) result.
fn run_all_threads(db: &ArrayDb, plan: &PlanNode, mode: OptimizerMode) -> Array {
    let mut result: Option<Array> = None;
    for threads in THREADS {
        let config = ExecConfig::builder()
            .threads(threads)
            .optimizer(mode)
            .build()
            .unwrap();
        let got = run_plan(db.cluster(), plan, &config).unwrap().array;
        match &result {
            None => result = Some(got),
            Some(first) => assert_eq!(
                first, &got,
                "join result diverged between thread counts at threads={threads}"
            ),
        }
    }
    result.unwrap()
}

/// Every connected left-deep order and the DP-chosen plan over the same
/// graph produce bit-identical arrays (threads 1, 2, and 8 each).
fn assert_all_orders_equivalent(db: &ArrayDb, as_written: &PlanNode, min_orders: usize) {
    let catalog = |name: &str| db.cluster().catalog().schema(name).ok().cloned();
    let graph = JoinGraph::from_plan(as_written, &catalog).expect("graph should flatten");
    let orders = graph.enumerate_left_deep();
    assert!(
        orders.len() >= min_orders,
        "expected at least {min_orders} connected left-deep orders, got {}",
        orders.len()
    );

    // The DP path: the as-written tree through the default optimizer.
    let reference = run_all_threads(db, as_written, OptimizerMode::Dp);

    // Every explicit order, executed exactly as constructed.
    for order in &orders {
        let tree = graph
            .tree_for_order(order)
            .expect("connected orders always build a tree");
        let got = run_all_threads(db, &tree, OptimizerMode::Off);
        assert_eq!(
            &reference, &got,
            "order {order:?} diverged from the DP-chosen plan"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 3-way chain A ⋈ B ⋈ C on a shared dimension: DP plan and all
    /// left-deep orders are bit-identical at threads 1, 2, and 8.
    #[test]
    fn three_way_chain_orders_are_equivalent(
        cells_a in proptest::collection::vec((1i64..=12, 1i64..=40), 1..40),
        cells_b in proptest::collection::vec((1i64..=12, 1i64..=40), 1..40),
        cells_c in proptest::collection::vec((1i64..=12, 1i64..=40), 1..40),
    ) {
        let mut db = ArrayDb::new(3, NetworkModel::gigabit());
        db.load_default(build_1d("A", "v", &cells_a)).unwrap();
        db.load_default(build_1d("B", "w", &cells_b)).unwrap();
        db.load_default(build_1d("C", "u", &cells_c)).unwrap();
        let plan = join(
            join(scan("A"), scan("B"), &[("i", "i")]),
            scan("C"),
            &[("i", "i")],
        );
        // Transitive saturation makes the shared-dimension chain a
        // clique: all 3! = 6 orders are connected.
        assert_all_orders_equivalent(&db, &plan, 6);
    }

    /// 4-way star: fact F[i,j] joins D1 on i and D2 on j, with D3
    /// chained off D2's key. All connected left-deep orders and the DP
    /// plan agree.
    #[test]
    fn four_way_star_orders_are_equivalent(
        cells_f in proptest::collection::vec((1i64..=8, 1i64..=8, 1i64..=40), 1..50),
        cells_d1 in proptest::collection::vec((1i64..=8, 1i64..=40), 1..20),
        cells_d2 in proptest::collection::vec((1i64..=8, 1i64..=40), 1..20),
        cells_d3 in proptest::collection::vec((1i64..=8, 1i64..=40), 1..20),
    ) {
        let mut db = ArrayDb::new(3, NetworkModel::gigabit());
        let f_schema = ArraySchema::parse("F<m:int>[i=1,8,4, j=1,8,4]").unwrap();
        let f_cells: BTreeMap<(i64, i64), i64> =
            cells_f.iter().map(|&(i, j, m)| ((i, j), m)).collect();
        let f = Array::from_cells(
            f_schema,
            f_cells
                .into_iter()
                .map(|((i, j), m)| (vec![i, j], vec![Value::Int(m)])),
        )
        .unwrap();
        db.load_default(f).unwrap();
        let d = |name: &str, attr: &str, dim: &str, cells: &[(i64, i64)]| {
            let schema =
                ArraySchema::parse(&format!("{name}<{attr}:int>[{dim}=1,8,4]")).unwrap();
            let dedup: BTreeMap<i64, i64> = cells.iter().copied().collect();
            Array::from_cells(
                schema,
                dedup.into_iter().map(|(k, v)| (vec![k], vec![Value::Int(v)])),
            )
            .unwrap()
        };
        db.load_default(d("D1", "x", "i", &cells_d1)).unwrap();
        db.load_default(d("D2", "y", "j", &cells_d2)).unwrap();
        db.load_default(d("D3", "z", "j", &cells_d3)).unwrap();
        let plan = join(
            join(
                join(scan("F"), scan("D1"), &[("i", "i")]),
                scan("D2"),
                &[("j", "j")],
            ),
            scan("D3"),
            &[("j", "j")],
        );
        // D1 only connects through F's `i`, so not all 4! orders are
        // connected — but F-first alone yields 3! = 6.
        assert_all_orders_equivalent(&db, &plan, 6);
    }
}

// ---------------------------------------------------------------------
// Optimizer robustness on randomized connected graphs
// ---------------------------------------------------------------------

/// Build an n-relation join graph from a random spanning tree: relation
/// `k` joins its up-link attribute `b{k}` to its parent's key `a{p}`
/// (`b{k}` merges away in the natural schema; `a{k}` survives for `k`'s
/// own children). Dimensions are disjoint, so the only connectivity is
/// the explicit edges.
fn random_tree_plan(n: usize, parents: &[usize]) -> (PlanNode, Vec<ArraySchema>) {
    let schemas: Vec<ArraySchema> = (0..n)
        .map(|k| ArraySchema::parse(&format!("R{k}<a{k}:int, b{k}:int>[d{k}=1,100,10]")).unwrap())
        .collect();
    let mut plan = scan("R0");
    for k in 1..n {
        let p = parents[k - 1] % k; // parent among already-joined relations
        let pair_left = format!("a{p}");
        let pair_right = format!("b{k}");
        plan = PlanNode::Join {
            left: Box::new(plan),
            right: Box::new(scan(&format!("R{k}"))),
            pairs: vec![(pair_left, pair_right)],
            output: None,
        };
    }
    (plan, schemas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any random connected graph with any positive statistics, the
    /// DP returns a plan, the plan emits a tree (every chosen split has
    /// a crossing edge — `tree_for_plan` returns `None` on cross
    /// products), estimates are finite, and the left-deep enumeration
    /// only produces connected prefixes.
    #[test]
    fn dp_on_random_connected_graphs_never_picks_cross_products(
        n in 2usize..=6,
        parents in proptest::collection::vec(0usize..6, 5),
        rows in proptest::collection::vec(1u32..2_000_000, 6),
        ndvs in proptest::collection::vec(1u32..50_000, 6),
    ) {
        let (plan, schemas) = random_tree_plan(n, &parents);
        let catalog = move |name: &str| {
            schemas.iter().find(|s| s.name == name).cloned()
        };
        let graph = JoinGraph::from_plan(&plan, &catalog).expect("tree plans flatten");
        prop_assert!(graph.is_connected());

        let ests: Vec<RelEstimate> = (0..n)
            .map(|k| {
                let mut ndv = std::collections::HashMap::new();
                ndv.insert(format!("a{k}"), f64::from(ndvs[k]).min(f64::from(rows[k])));
                ndv.insert(format!("b{k}"), f64::from(ndvs[k]).min(f64::from(rows[k])));
                RelEstimate {
                    rows: f64::from(rows[k]),
                    ndv,
                    selectivity: 1.0,
                }
            })
            .collect();

        let dp = graph.optimize(&ests).expect("connected graphs always plan");
        prop_assert!(dp.root_rows().is_finite() && dp.root_rows() >= 0.0);
        prop_assert!(dp.root_cost().is_finite() && dp.root_cost() >= 0.0);
        let tree = graph.tree_for_plan(&dp);
        prop_assert!(tree.is_some(), "DP chose a cross-product split");

        // Left-deep enumeration: every order is a permutation whose
        // every prefix stays connected (tree_for_order succeeds).
        let orders = graph.enumerate_left_deep();
        prop_assert!(!orders.is_empty());
        for order in &orders {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &(0..n).collect::<Vec<_>>());
            prop_assert!(graph.tree_for_order(order).is_some());
        }
    }
}
