//! Query-lifecycle guardrails: cancellation stress, worker hygiene, and
//! deadline policy edges that don't need the fault simulator.
//!
//! The centerpiece sweeps a cancel-after fuse across every cooperative
//! checkpoint of a real join and proves the executor unwinds cleanly
//! each time: a typed `Cancelled` error, an immediately reusable
//! session, and — measured off `/proc/self/status` — zero leaked worker
//! threads (the pools are scoped, so cancellation can't orphan them).

use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::{execute_join, ExecConfig, JoinQuery, OnDeadline};
use sj_core::{CancelHandle, ClockSource, JoinError, JoinPredicate};
use sj_workload::{skewed_pair, SkewedArrayConfig};

fn small_cluster() -> Cluster {
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 12_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 6_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::gigabit());
    cluster.load_array(a, &Placement::HashSalted(1)).unwrap();
    cluster.load_array(b, &Placement::HashSalted(2)).unwrap();
    cluster
}

fn query() -> JoinQuery {
    JoinQuery::new("A", "B", JoinPredicate::new(vec![("v1", "v1")]))
}

/// The process's OS thread count, from `/proc/self/status`.
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .map(|v| v.trim().parse().expect("Threads: value"))
        .expect("Threads: line present")
}

/// Wait (bounded) for the thread count to settle back to `baseline`;
/// other tests in this binary may have transient scoped pools in
/// flight when we sample.
fn settled_thread_count(baseline: usize) -> usize {
    let mut latest = os_thread_count();
    for _ in 0..100 {
        if latest <= baseline {
            return latest;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        latest = os_thread_count();
    }
    latest
}

#[test]
fn cancellation_stress_leaves_no_leaked_workers() {
    let cluster = small_cluster();
    let query = query();
    let handle = CancelHandle::new();
    let config = ExecConfig::builder()
        .threads(8)
        .cancel(handle.clone())
        .build()
        .unwrap();

    let expected = execute_join(&cluster, &query, &config).unwrap();
    let expected_cells: Vec<_> = expected.array.iter_cells().collect();
    assert!(!expected_cells.is_empty(), "fixture must produce matches");

    let baseline = os_thread_count();
    let (mut cancelled, mut completed) = (0u32, 0u32);
    for fuse in (0..300).step_by(3) {
        handle.reset();
        handle.cancel_after(fuse);
        match execute_join(&cluster, &query, &config) {
            Ok(run) => {
                completed += 1;
                assert_eq!(
                    run.array.iter_cells().collect::<Vec<_>>(),
                    expected_cells,
                    "a fuse that outlives the query must not perturb the answer (fuse={fuse})"
                );
            }
            Err(JoinError::Cancelled) => cancelled += 1,
            Err(e) => panic!("fuse={fuse}: expected Cancelled or success, got {e:?}"),
        }
    }
    assert!(cancelled > 0, "sweep never landed a cancellation");
    assert!(completed > 0, "sweep never outlived the query");

    // The session stays usable: reset once more and run to completion.
    handle.reset();
    let rerun = execute_join(&cluster, &query, &config).expect("follow-up query after stress");
    assert_eq!(rerun.array.iter_cells().collect::<Vec<_>>(), expected_cells);

    let after = settled_thread_count(baseline);
    let leaked = after.saturating_sub(baseline);
    println!(
        "cancellation stress: {cancelled} cancelled, {completed} completed, leaked workers: {leaked}"
    );
    assert_eq!(
        leaked, 0,
        "scoped worker pools must not survive cancellation ({baseline} threads before, {after} after)"
    );
}

#[test]
fn pre_expired_real_deadline_aborts_under_both_policies() {
    // A deadline that lapses before planning even starts aborts no
    // matter the degradation policy: `FinishCurrentUnit` only commits
    // once data alignment begins.
    let cluster = small_cluster();
    let query = query();
    for policy in [OnDeadline::Abort, OnDeadline::FinishCurrentUnit] {
        let config = ExecConfig::builder()
            .threads(2)
            .deadline(1e-12)
            .on_deadline(policy)
            .clock(ClockSource::Real)
            .build()
            .unwrap();
        let err = execute_join(&cluster, &query, &config).unwrap_err();
        assert!(
            matches!(err, JoinError::DeadlineExceeded),
            "policy {policy:?}: expected DeadlineExceeded, got {err:?}"
        );
    }
}

#[test]
fn explicit_cancel_wins_over_expired_deadline() {
    let cluster = small_cluster();
    let query = query();
    let handle = CancelHandle::new();
    handle.cancel();
    let config = ExecConfig::builder()
        .deadline(1e-12)
        .cancel(handle)
        .build()
        .unwrap();
    let err = execute_join(&cluster, &query, &config).unwrap_err();
    assert!(
        matches!(err, JoinError::Cancelled),
        "explicit cancel must shadow the expired deadline, got {err:?}"
    );
}

#[test]
fn engine_cancel_handle_cancels_and_resets() {
    use skewjoin::{Array, ArrayDb, ArraySchema, Value};

    let mut db = ArrayDb::new(2, NetworkModel::gigabit());
    let mk = |name: &str| {
        Array::from_cells(
            ArraySchema::parse(&format!("{name}<v:int>[i=1,100,10]")).unwrap(),
            (1..=100).map(|i| (vec![i], vec![Value::Int(i % 7)])),
        )
        .unwrap()
    };
    db.load_default(mk("A")).unwrap();
    db.load_default(mk("B")).unwrap();
    let sql = "SELECT * FROM A, B WHERE A.v = B.v";

    db.cancel_handle().cancel_after(0);
    let err = db.query(sql).unwrap_err();
    assert!(
        matches!(err, skewjoin::Error::Join(JoinError::Cancelled)),
        "engine query must surface the typed cancellation, got {err:?}"
    );

    // The database stays usable after a reset.
    db.cancel_handle().reset();
    let result = db.query(sql).expect("follow-up query after reset");
    assert!(result.array.cell_count() > 0);
}
