//! Adversarial skew (paper §6.3.2): compute the normalized difference
//! vegetation index (NDVI) by joining two MODIS bands on all three
//! dimensions.
//!
//! Both bands come from the same sensor footprint, so matching chunks
//! have nearly identical sizes — there is no beneficial skew to exploit,
//! and all planners should perform comparably (the paper's point: the
//! skew-aware machinery costs nothing when there is no skew).
//!
//! ```sh
//! cargo run --release --example vegetation_index
//! ```

use skewjoin::join::exec::ExecConfig;
use skewjoin::workload::{modis_band, GeoConfig};
use skewjoin::{ArrayDb, JoinAlgo, MetricsView, NetworkModel, Placement, PlannerKind, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geo = GeoConfig {
        time_extent: 1024,
        time_chunk: 1024,
        lon_chunks: 12,
        lat_chunks: 8,
        deg_per_chunk: 16, // 0.25-degree cells, 4-degree tiles
        cells: 100_000,
        seed: 42,
    };
    let band1 = modis_band(&geo, "Band1", 1);
    let band2 = modis_band(&geo, "Band2", 2);
    println!(
        "Band1: {} cells, Band2: {} cells (chunk sizes differ by ~1.5%)",
        band1.cell_count(),
        band2.cell_count()
    );

    let mut db = ArrayDb::new(4, NetworkModel::scaled_to_engine());
    db.load(band1, &Placement::HashSalted(1))?;
    db.load(band2, &Placement::HashSalted(2))?;

    let params = skewjoin::join::exec::calibrate_cost_params(
        &skewjoin::NetworkModel::scaled_to_engine(),
        32,
    );

    // The paper's NDVI query: D:D on (time, lon, lat) with a computed
    // SELECT expression.
    let aql = "SELECT (Band2.reflectance - Band1.reflectance) \
               / (Band2.reflectance + Band1.reflectance) AS ndvi \
               FROM Band1, Band2 \
               WHERE Band1.time = Band2.time \
               AND Band1.lon = Band2.lon \
               AND Band1.lat = Band2.lat";

    println!(
        "\n{:<8} {:>12} {:>14} {:>14} {:>10}",
        "planner", "plan (ms)", "align (ms)", "compare (ms)", "matches"
    );
    let mut totals = Vec::new();
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ] {
        db.set_exec_config(
            ExecConfig::builder()
                .planner(planner)
                .forced_algo(JoinAlgo::Merge)
                .cost_params(params)
                .build()?,
        );
        let result = db.query(aql)?;
        let m = result.telemetry.join_metrics().unwrap();
        println!(
            "{:<8} {:>12.2} {:>14.3} {:>14.3} {:>10}",
            m.planner,
            m.physical_planning.as_secs_f64() * 1e3,
            m.alignment_seconds * 1e3,
            m.comparison_seconds * 1e3,
            m.matches
        );
        totals.push(m.total_seconds());

        // Sanity: NDVI values are in [-1, 1].
        let ndvi = &result.array;
        for (_, values) in ndvi.iter_cells().take(1000) {
            if let Value::Float(v) = values[0] {
                assert!((-1.0..=1.0).contains(&v), "NDVI out of range: {v}");
            }
        }
    }
    let max = totals.iter().copied().fold(0.0f64, f64::max);
    let min = totals.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nadversarial skew: planner spread is only {:.2}x (all comparable, as in the paper)",
        max / min
    );
    Ok(())
}
