//! An interactive AQL/AFL shell over a demo database.
//!
//! Loads two small arrays (`A`, `B`) into a 2-node cluster and reads
//! queries from stdin. AQL (`SELECT …`) and AFL (`filter(A, v > 5)`)
//! are both accepted; results print as coordinate → values listings.
//!
//! ```sh
//! echo 'SELECT * FROM A WHERE v > 5' | cargo run --example aql_repl
//! ```

use std::io::{self, BufRead, Write};

use skewjoin::{Array, ArrayDb, ArraySchema, MetricsView, NetworkModel, QueryResult, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = ArrayDb::new(2, NetworkModel::gigabit());
    let a = Array::from_cells(
        ArraySchema::parse("A<v:int>[i=1,12,4]")?,
        (1..=12).map(|i| (vec![i], vec![Value::Int(i % 7)])),
    )?;
    let b = Array::from_cells(
        ArraySchema::parse("B<w:int>[j=1,12,4]")?,
        (1..=12).map(|j| (vec![j], vec![Value::Int(j % 5)])),
    )?;
    db.load_default(a)?;
    db.load_default(b)?;

    println!("skewjoin AQL/AFL shell — arrays A<v:int>[i=1,12,4], B<w:int>[j=1,12,4]");
    println!("examples:");
    println!("  SELECT * FROM A WHERE v > 3");
    println!("  SELECT i, j FROM A, B WHERE A.v = B.w");
    println!("  filter(A, v = 0)");
    println!("  redim(A, <i:int>[v=0,6,3])");
    println!("type queries, one per line (ctrl-d to exit):\n");

    let stdin = io::stdin();
    let mut out = io::stdout();
    print!("> ");
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.eq_ignore_ascii_case("exit") {
            if text.eq_ignore_ascii_case("exit") {
                break;
            }
            print!("> ");
            out.flush()?;
            continue;
        }
        let result = if text.to_ascii_uppercase().starts_with("SELECT") {
            db.query(text)
        } else {
            db.afl(text)
        };
        match result {
            Ok(r) => print_result(&r),
            Err(e) => println!("error: {e}"),
        }
        print!("> ");
        out.flush()?;
    }
    println!("\nbye");
    Ok(())
}

fn print_result(result: &QueryResult) {
    let array = &result.array;
    println!(
        "{} — {} cells in {} chunks",
        array.schema,
        array.cell_count(),
        array.chunk_count()
    );
    for (i, (coord, values)) in array.iter_cells().enumerate() {
        if i >= 20 {
            println!("  … ({} more cells)", array.cell_count() - 20);
            break;
        }
        let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        println!("  {coord:?} -> ({})", vals.join(", "));
    }
    if let Some(m) = result.telemetry.join_metrics() {
        println!(
            "  [join: {} via {}, {} matches, {:.2} ms simulated alignment]",
            m.afl,
            m.planner,
            m.matches,
            m.alignment_seconds * 1e3
        );
    }
}
