//! All five physical planners head-to-head on one Zipf-skewed hash join
//! (the paper's §6.2.2 setting, scaled to a laptop).
//!
//! ```sh
//! cargo run --release --example planner_shootout [alpha]
//! ```

use skewjoin::join::exec::{execute_join, ExecConfig, JoinQuery};
use skewjoin::workload::{skewed_pair, SkewedArrayConfig};
use skewjoin::{
    Cluster, JoinAlgo, JoinPredicate, MetricsView, NetworkModel, Placement, PlannerKind,
};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alpha: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.0);

    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 150_000,
        spatial_alpha: 0.0,
        value_alpha: alpha, // hash-join skew lives in the value frequencies
        value_domain: 50_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    println!(
        "A: {} cells, B: {} cells, value-skew α = {alpha}",
        a.cell_count(),
        b.cell_count()
    );

    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::RoundRobin)?;
    cluster.load_array(b, &Placement::RoundRobin)?;

    let params = skewjoin::join::exec::calibrate_cost_params(
        &skewjoin::NetworkModel::scaled_to_engine(),
        32,
    );

    // The paper's A:A query: join on both attributes.
    let query = JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.01);

    println!(
        "\n{:<8} {:>11} {:>13} {:>13} {:>11} {:>12}",
        "planner", "plan (ms)", "align (ms)", "comp (ms)", "total (ms)", "est. cost"
    );
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::Ilp {
            budget: Duration::from_secs(3),
        },
        PlannerKind::IlpCoarse {
            budget: Duration::from_secs(3),
            bins: 75, // the paper's bin count
        },
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ] {
        let config = ExecConfig::builder()
            .planner(planner)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(256)
            .cost_params(params)
            .build()?;
        let run = execute_join(&cluster, &query, &config)?;
        let m = run.telemetry.join_metrics().expect("join span recorded");
        println!(
            "{:<8} {:>11.2} {:>13.3} {:>13.3} {:>11.2} {:>12.4}",
            m.planner,
            m.physical_planning.as_secs_f64() * 1e3,
            m.alignment_seconds * 1e3,
            m.comparison_seconds * 1e3,
            m.total_seconds() * 1e3,
            m.est_physical_cost,
        );
    }
    println!("\n(Tabu should lead under skew; Baseline and MBH suffer at α ≥ 0.5 — paper Fig. 8.)");
    Ok(())
}
