//! Profile one skewed join end to end through the telemetry subsystem.
//!
//! Runs the Figure-8-style hash-skew join (value-Zipf α = 1.5) on a
//! 4-node cluster with the JSON sink enabled, prints the span tree with
//! per-phase wall times, and checks the tree accounts for ≥ 95% of the
//! join's wall clock — the coverage bar DESIGN.md §11 promises.
//!
//! ```sh
//! cargo run --release --example profile_query [trace.jsonl]
//! ```

use skewjoin::join::exec::{execute_join, ExecConfig, JoinQuery};
use skewjoin::telemetry::SpanNode;
use skewjoin::workload::{skewed_pair, SkewedArrayConfig};
use skewjoin::{
    Cluster, JoinAlgo, JoinPredicate, NetworkModel, Placement, PlannerKind, TelemetryConfig,
};

fn print_tree(node: &SpanNode, depth: usize) {
    let fields: Vec<String> = node
        .fields
        .iter()
        .filter(|(k, _)| !k.ends_with("busy_seconds"))
        .take(4)
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    println!(
        "{:indent$}{:<14} {:>10.3} ms  {}",
        "",
        node.name,
        node.duration_seconds() * 1e3,
        fields.join(" "),
        indent = depth * 2
    );
    // Per-unit spans are in the JSON trace; the console tree stops at
    // the per-node level.
    if depth >= 3 {
        return;
    }
    for child in &node.children {
        print_tree(child, depth + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TRACE_SMOKE.json".to_string());

    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 40_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 20_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(4, NetworkModel::scaled_to_engine());
    cluster.load_array(a, &Placement::HashSalted(1))?;
    cluster.load_array(b, &Placement::HashSalted(2))?;
    let query = JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001);
    let config = ExecConfig::builder()
        .planner(PlannerKind::Tabu)
        .forced_algo(JoinAlgo::Hash)
        .hash_buckets(64)
        .threads(2)
        .telemetry(TelemetryConfig::Json {
            path: trace_path.clone(),
        })
        .build()?;

    let run = execute_join(&cluster, &query, &config)?;
    println!(
        "fig8 hash-skew join: {} result cells\n",
        run.array.cell_count()
    );
    let root = run.telemetry.root().expect("query span recorded");
    print_tree(root, 0);

    let join = run.telemetry.find("join").expect("join span recorded");
    let coverage = join.child_coverage();
    println!(
        "\nphase coverage of join wall time: {:.1}% (bar: >= 95%)",
        coverage * 100.0
    );
    println!("JSON trace written to {trace_path}");
    assert!(
        coverage >= 0.95,
        "named phases cover only {:.1}% of the join span",
        coverage * 100.0
    );
    Ok(())
}
