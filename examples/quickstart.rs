//! Quickstart: load two arrays into a simulated 4-node cluster and run a
//! join through the full shuffle-join optimizer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use skewjoin::{Array, ArrayDb, ArraySchema, MetricsView, NetworkModel, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node shared-nothing cluster over a gigabit-class switch.
    let mut db = ArrayDb::new(4, NetworkModel::gigabit());

    // Two 2-D arrays with the same tiling — the paper's Figure 1 style
    // schema: dimensions i, j with chunk interval 16, one attribute each.
    let schema_a = ArraySchema::parse("A<temperature:float>[i=1,128,16, j=1,128,16]")?;
    let schema_b = ArraySchema::parse("B<salinity:float>[i=1,128,16, j=1,128,16]")?;

    // Populate A densely and B sparsely (only every other row) so the
    // join has something interesting to do.
    let a = Array::from_cells(
        schema_a,
        (1..=128i64).flat_map(|i| {
            (1..=128i64)
                .map(move |j| (vec![i, j], vec![Value::Float(10.0 + (i + j) as f64 * 0.01)]))
        }),
    )?;
    let b = Array::from_cells(
        schema_b,
        (1..=128i64).step_by(2).flat_map(|i| {
            (1..=128i64).map(move |j| (vec![i, j], vec![Value::Float(34.0 + j as f64 * 0.001)]))
        }),
    )?;
    println!("A: {} cells in {} chunks", a.cell_count(), a.chunk_count());
    println!("B: {} cells in {} chunks", b.cell_count(), b.chunk_count());

    db.load_default(a)?;
    db.load_default(b)?;

    // A D:D equi-join in AQL. The optimizer infers the join schema,
    // picks merge join with scan alignment (no reorganization needed),
    // and the Tabu physical planner assigns the 64 join units to nodes.
    let result = db.query(
        "SELECT temperature, salinity FROM A, B \
         WHERE A.i = B.i AND A.j = B.j",
    )?;

    let metrics = result.telemetry.join_metrics().expect("join ran");
    println!("\nchosen plan        : {}", metrics.afl);
    println!("join algorithm     : {:?}", metrics.algo);
    println!("physical planner   : {}", metrics.planner);
    println!("matches            : {}", metrics.matches);
    println!("cells moved        : {}", metrics.cells_moved);
    println!(
        "data alignment     : {:.3} ms (simulated network)",
        metrics.alignment_seconds * 1e3
    );
    println!(
        "cell comparison    : {:.3} ms (slowest node)",
        metrics.comparison_seconds * 1e3
    );
    println!("result cells       : {}", result.array.cell_count());

    // Spot-check one joined cell.
    let cell = result.array.get(&[1, 1])?.expect("cell (1,1) joined");
    println!("\nresult[1,1] = {cell:?}");

    // The same join, written as AFL.
    let afl = db.afl("merge(A, B)")?;
    assert_eq!(afl.array.cell_count(), result.array.cell_count());
    println!("AFL merge(A, B) produced the identical result ✓");
    Ok(())
}
