//! Beneficial skew (paper §6.3.1): join ship-track broadcasts (AIS) with
//! satellite reflectance (MODIS) on the geospatial dimensions to study
//! the environmental impact of marine traffic.
//!
//! AIS data piles ~85% of its cells into ~5% of the chunks (ports), while
//! MODIS is nearly uniform — exactly the *beneficial* skew the shuffle
//! planners exploit. The example compares the skew-agnostic baseline with
//! the skew-aware planners and prints a Figure-9-style table.
//!
//! ```sh
//! cargo run --release --example shipping_env_impact
//! ```

use skewjoin::join::exec::ExecConfig;
use skewjoin::workload::{ais_broadcasts, modis_band, AisConfig, GeoConfig};
use skewjoin::{ArrayDb, JoinAlgo, MetricsView, NetworkModel, Placement, PlannerKind};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geo = GeoConfig {
        time_extent: 2048,
        time_chunk: 2048,
        lon_chunks: 32,
        lat_chunks: 16,
        deg_per_chunk: 16, // 0.25-degree cells, 4-degree tiles
        cells: 150_000,
        seed: 2015,
    };
    let band1 = modis_band(&geo, "Band1", 1);
    // AIS is the smaller array (the paper's 110 GB vs MODIS's 170 GB).
    let ais = ais_broadcasts(
        &AisConfig {
            port_zipf_alpha: 0.7,
            ..AisConfig::new(GeoConfig {
                cells: 100_000,
                ..geo
            })
        },
        "Broadcast",
    );
    println!(
        "Band1    : {:>7} cells over {:>4} chunks (near-uniform)",
        band1.cell_count(),
        band1.chunk_count()
    );
    println!(
        "Broadcast: {:>7} cells over {:>4} chunks (~85% in ports)",
        ais.cell_count(),
        ais.chunk_count()
    );

    let mut db = ArrayDb::new(4, NetworkModel::scaled_to_engine());
    // Independent layouts, as two separately-loaded arrays would have.
    db.load(band1, &Placement::HashSalted(1))?;
    db.load(ais, &Placement::HashSalted(2))?;

    // Calibrate (m, b, p, t) against this engine and network (§5.1).
    let params = skewjoin::join::exec::calibrate_cost_params(
        &skewjoin::NetworkModel::scaled_to_engine(),
        40,
    );

    // The paper's query: join on longitude and latitude only, producing
    // a long-term environment-vs-traffic view.
    let aql = "SELECT Band1.reflectance, Broadcast.ship_id \
               FROM Band1, Broadcast \
               WHERE Band1.lon = Broadcast.lon \
               AND Band1.lat = Broadcast.lat";

    println!(
        "\n{:<8} {:>12} {:>14} {:>14} {:>12}",
        "planner", "plan (ms)", "align (ms)", "compare (ms)", "moved cells"
    );
    let mut baseline_total = None;
    let mut best_total = f64::INFINITY;
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::IlpCoarse {
            budget: Duration::from_secs(2),
            bins: 32,
        },
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ] {
        // The paper's §6.3 experiments run merge joins over sorted
        // chunk units.
        db.set_exec_config(
            ExecConfig::builder()
                .planner(planner.clone())
                .forced_algo(JoinAlgo::Merge)
                .cost_params(params)
                .build()?,
        );
        let result = db.query(aql)?;
        let m = result.telemetry.join_metrics().unwrap();
        println!(
            "{:<8} {:>12.2} {:>14.3} {:>14.3} {:>12}",
            m.planner,
            m.physical_planning.as_secs_f64() * 1e3,
            m.alignment_seconds * 1e3,
            m.comparison_seconds * 1e3,
            m.cells_moved
        );
        let total = m.total_seconds();
        if m.planner == "B" {
            baseline_total = Some(total);
        } else {
            best_total = best_total.min(total);
        }
    }
    if let Some(b) = baseline_total {
        println!(
            "\nskew-aware speedup over baseline: {:.2}x (paper reports ~2.5x)",
            b / best_total
        );
    }
    Ok(())
}
